"""Estimates, confidence intervals, and the measurement runner."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import MeasurementPlan
from repro.experiments.runner import (
    Cell,
    Estimate,
    measure,
    measure_many,
    run_cells,
    shutdown_pool,
    student_t_90,
)
from repro.sim.system import RunResult, SimulationConfig, run_simulation
from repro.workload.spec import WorkloadSpec

TINY = WorkloadSpec(n_objects=40, hot_set_size=8, n_partitions=4)

TINY_PLAN = MeasurementPlan(
    duration_ms=2_000.0, warmup_ms=0.0, repetitions=3, workload=TINY
)


@pytest.fixture(autouse=True)
def _clean_pool():
    yield
    shutdown_pool()


class TestStudentT:
    def test_known_values(self):
        assert student_t_90(1) == pytest.approx(6.314)
        assert student_t_90(10) == pytest.approx(1.812)
        assert student_t_90(29) == pytest.approx(1.699)

    def test_large_sample_asymptote(self):
        assert student_t_90(500) == pytest.approx(1.645)

    def test_degenerate(self):
        import math

        assert math.isnan(student_t_90(0))


class TestEstimate:
    def test_single_sample_has_zero_width(self):
        estimate = Estimate.from_samples([42.0])
        assert estimate.mean == 42.0
        assert estimate.half_width == 0.0

    def test_identical_samples_have_zero_width(self):
        estimate = Estimate.from_samples([5.0, 5.0, 5.0])
        assert estimate.half_width == 0.0

    def test_known_interval(self):
        # n=3, mean=10, sample variance=1 -> hw = 2.920 * sqrt(1/3).
        estimate = Estimate.from_samples([9.0, 10.0, 11.0])
        assert estimate.mean == 10.0
        assert estimate.half_width == pytest.approx(2.920 / (3**0.5))

    def test_relative_half_width(self):
        estimate = Estimate.from_samples([9.0, 11.0])
        assert estimate.relative_half_width == estimate.half_width / 10.0

    def test_format(self):
        estimate = Estimate.from_samples([1.0, 2.0])
        assert "±" in f"{estimate:.1f}"


class TestMeasurementPlan:
    def test_seed_sequence(self):
        plan = MeasurementPlan(repetitions=3, base_seed=10)
        assert plan.seeds() == (10, 11, 12)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            MeasurementPlan(repetitions=0)
        with pytest.raises(ExperimentError):
            MeasurementPlan(duration_ms=1_000.0, warmup_ms=2_000.0)


class TestMeasure:
    def test_aggregates_repetitions(self):
        plan = MeasurementPlan(
            duration_ms=3_000.0,
            warmup_ms=300.0,
            repetitions=2,
            workload=TINY,
        )
        config = SimulationConfig(mpl=2, til=100_000.0, tel=10_000.0)
        measurement = measure(config, plan)
        assert len(measurement.runs) == 2
        assert measurement.throughput.mean > 0
        assert len(measurement.throughput.samples) == 2
        # The plan's workload overrode the config's default.
        assert measurement.config.workload is TINY

    def test_metric_lookup(self):
        plan = MeasurementPlan(
            duration_ms=2_000.0, warmup_ms=0.0, repetitions=1, workload=TINY
        )
        measurement = measure(SimulationConfig(mpl=1), plan)
        assert measurement.metric("throughput") is measurement.throughput
        with pytest.raises(AttributeError):
            measurement.metric("config")

    def test_progress_callback(self):
        plan = MeasurementPlan(
            duration_ms=2_000.0, warmup_ms=0.0, repetitions=2, workload=TINY
        )
        seen = []
        measure(SimulationConfig(mpl=1), plan, progress=seen.append)
        assert len(seen) == 2


class TestParallelExecution:
    """The process-pool backend: determinism, ordering, failure handling."""

    def test_estimates_identical_across_worker_counts(self):
        config = SimulationConfig(mpl=2, til=100_000.0, tel=10_000.0)
        serial = measure(config, TINY_PLAN, max_workers=1)
        parallel = measure(config, TINY_PLAN, max_workers=4)
        for name in (
            "throughput",
            "aborts",
            "inconsistent_operations",
            "total_operations",
            "operations_per_commit",
            "commits",
        ):
            assert serial.metric(name) == parallel.metric(name)

    def test_measure_many_identical_across_worker_counts(self):
        configs = [
            SimulationConfig(mpl=1, til=100_000.0, tel=10_000.0),
            SimulationConfig(mpl=2),
        ]
        serial = measure_many(configs, TINY_PLAN, max_workers=1)
        parallel = measure_many(configs, TINY_PLAN, max_workers=4)
        for s, p in zip(serial, parallel):
            assert s.config == p.config
            assert s.throughput == p.throughput
            assert s.aborts == p.aborts

    def test_run_cells_preserves_cell_order(self):
        cells = [
            Cell(config=SimulationConfig(
                mpl=1, workload=TINY, duration_ms=1_000.0, warmup_ms=0.0,
                seed=seed,
            ), seed=seed)
            for seed in (5, 3, 9, 1)
        ]
        results = run_cells(cells, max_workers=2)
        assert [r.cell.seed for r in results] == [5, 3, 9, 1]
        assert all(r.ok and r.wall_s > 0 for r in results)

    def test_progress_reports_every_cell(self):
        config = SimulationConfig(mpl=1, til=100_000.0, tel=10_000.0)
        seen = []
        measure_many(
            [config],
            TINY_PLAN,
            max_workers=2,
            progress=lambda cr, done, total: seen.append((done, total)),
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_all_cells_failing_raises(self, monkeypatch):
        def boom(config):
            raise RuntimeError("kaput")

        monkeypatch.setattr(
            "repro.experiments.runner.run_simulation", boom
        )
        with pytest.raises(ExperimentError, match="kaput"):
            measure(SimulationConfig(mpl=1), TINY_PLAN, max_workers=1)

    def test_partial_failure_drops_samples(self, monkeypatch):
        real = run_simulation

        def flaky(config):
            if config.seed == 1:
                raise RuntimeError("seed 1 refuses")
            return real(config)

        monkeypatch.setattr("repro.experiments.runner.run_simulation", flaky)
        measurement = measure(
            SimulationConfig(mpl=1), TINY_PLAN, max_workers=1
        )
        assert len(measurement.runs) == 2
        assert len(measurement.failed_cells) == 1
        assert measurement.failed_cells[0].cell.seed == 1
        assert "seed 1 refuses" in measurement.failed_cells[0].error

    def test_timeout_records_failed_cells(self):
        config = SimulationConfig(
            mpl=4, til=100_000.0, tel=10_000.0, duration_ms=120_000.0,
            warmup_ms=0.0,
        )
        cells = [Cell(config=config, seed=0), Cell(config=config, seed=0)]
        results = run_cells(cells, max_workers=2, timeout_s=0.001)
        assert all(not r.ok for r in results)
        assert all("timeout" in r.error for r in results)

    def test_config_and_result_pickle_roundtrip(self):
        config = SimulationConfig(
            mpl=2,
            til=100_000.0,
            tel=10_000.0,
            distance="scaled:2.0",
            workload=TINY,
            duration_ms=1_000.0,
            warmup_ms=0.0,
        )
        assert pickle.loads(pickle.dumps(config)) == config
        result = run_simulation(config)
        restored = pickle.loads(pickle.dumps(result))
        assert isinstance(restored, RunResult)
        assert restored.commits == result.commits
        assert restored.config == config

    def test_shutdown_pool_is_idempotent(self):
        from repro.experiments import runner

        run_cells(
            [
                Cell(config=SimulationConfig(
                    mpl=1, workload=TINY, duration_ms=500.0, warmup_ms=0.0,
                ), seed=0)
                for _ in range(2)
            ],
            max_workers=2,
        )
        assert runner._POOL is not None
        shutdown_pool()
        assert runner._POOL is None
        shutdown_pool()  # second call is a no-op

    def test_clean_shutdown_joins_worker_processes(self):
        """The default teardown reaps the children, not just abandons them.

        ``shutdown_pool`` used to pass ``wait=False`` unconditionally, so
        a clean exit left the pool's worker processes running to race
        interpreter teardown; only the crash path may skip the join.
        """
        from repro.experiments import runner

        run_cells(
            [
                Cell(config=SimulationConfig(
                    mpl=1, workload=TINY, duration_ms=500.0, warmup_ms=0.0,
                ), seed=0)
                for _ in range(2)
            ],
            max_workers=2,
        )
        assert runner._POOL is not None
        workers = list(runner._POOL._processes.values())
        assert workers, "pool should have spawned workers"
        shutdown_pool()
        assert all(not worker.is_alive() for worker in workers)
