"""Estimates, confidence intervals, and the measurement runner."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import MeasurementPlan
from repro.experiments.runner import Estimate, measure, student_t_90
from repro.sim.system import SimulationConfig
from repro.workload.spec import WorkloadSpec

TINY = WorkloadSpec(n_objects=40, hot_set_size=8, n_partitions=4)


class TestStudentT:
    def test_known_values(self):
        assert student_t_90(1) == pytest.approx(6.314)
        assert student_t_90(10) == pytest.approx(1.812)
        assert student_t_90(29) == pytest.approx(1.699)

    def test_large_sample_asymptote(self):
        assert student_t_90(500) == pytest.approx(1.645)

    def test_degenerate(self):
        import math

        assert math.isnan(student_t_90(0))


class TestEstimate:
    def test_single_sample_has_zero_width(self):
        estimate = Estimate.from_samples([42.0])
        assert estimate.mean == 42.0
        assert estimate.half_width == 0.0

    def test_identical_samples_have_zero_width(self):
        estimate = Estimate.from_samples([5.0, 5.0, 5.0])
        assert estimate.half_width == 0.0

    def test_known_interval(self):
        # n=3, mean=10, sample variance=1 -> hw = 2.920 * sqrt(1/3).
        estimate = Estimate.from_samples([9.0, 10.0, 11.0])
        assert estimate.mean == 10.0
        assert estimate.half_width == pytest.approx(2.920 / (3**0.5))

    def test_relative_half_width(self):
        estimate = Estimate.from_samples([9.0, 11.0])
        assert estimate.relative_half_width == estimate.half_width / 10.0

    def test_format(self):
        estimate = Estimate.from_samples([1.0, 2.0])
        assert "±" in f"{estimate:.1f}"


class TestMeasurementPlan:
    def test_seed_sequence(self):
        plan = MeasurementPlan(repetitions=3, base_seed=10)
        assert plan.seeds() == (10, 11, 12)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            MeasurementPlan(repetitions=0)
        with pytest.raises(ExperimentError):
            MeasurementPlan(duration_ms=1_000.0, warmup_ms=2_000.0)


class TestMeasure:
    def test_aggregates_repetitions(self):
        plan = MeasurementPlan(
            duration_ms=3_000.0,
            warmup_ms=300.0,
            repetitions=2,
            workload=TINY,
        )
        config = SimulationConfig(mpl=2, til=100_000.0, tel=10_000.0)
        measurement = measure(config, plan)
        assert len(measurement.runs) == 2
        assert measurement.throughput.mean > 0
        assert len(measurement.throughput.samples) == 2
        # The plan's workload overrode the config's default.
        assert measurement.config.workload is TINY

    def test_metric_lookup(self):
        plan = MeasurementPlan(
            duration_ms=2_000.0, warmup_ms=0.0, repetitions=1, workload=TINY
        )
        measurement = measure(SimulationConfig(mpl=1), plan)
        assert measurement.metric("throughput") is measurement.throughput
        with pytest.raises(AttributeError):
            measurement.metric("config")

    def test_progress_callback(self):
        plan = MeasurementPlan(
            duration_ms=2_000.0, warmup_ms=0.0, repetitions=2, workload=TINY
        )
        seen = []
        measure(SimulationConfig(mpl=1), plan, progress=seen.append)
        assert len(seen) == 2
