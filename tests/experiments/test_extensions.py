"""The hierarchical-bounds extension study (tiny plans)."""

from __future__ import annotations

from repro.experiments.config import MeasurementPlan
from repro.experiments.extensions import (
    ext_hierarchy,
    hierarchy_settings,
    hierarchy_study,
)
from repro.workload.generator import HOT_GROUP
from repro.workload.spec import WorkloadSpec

TINY_PLAN = MeasurementPlan(
    duration_ms=2_500.0,
    warmup_ms=0.0,
    repetitions=1,
    workload=WorkloadSpec(n_objects=40, hot_set_size=8, n_partitions=4),
)


class TestHierarchySettings:
    def test_settings_shape(self):
        settings = hierarchy_settings(TINY_PLAN.workload)
        assert settings["flat (no groups)"] is None
        loose = dict(settings["loose groups"])
        assert HOT_GROUP in loose
        # One limit per partition subgroup plus the hot group itself.
        assert len(loose) == TINY_PLAN.workload.n_partitions + 1


class TestHierarchyStudy:
    def test_study_and_figure(self):
        study = hierarchy_study(TINY_PLAN, mpl=3)
        assert set(study) == set(hierarchy_settings(TINY_PLAN.workload))
        for measurement in study.values():
            assert measurement.throughput.mean > 0
        figure = ext_hierarchy(TINY_PLAN, study=study)
        assert figure.figure_id == "ext_hierarchy"
        assert [s.label for s in figure.series] == [
            "throughput (tx/s)",
            "aborts",
        ]
        assert len(figure.series[0].x) == len(study)

    def test_tight_limits_admit_less_inconsistency(self):
        study = hierarchy_study(TINY_PLAN, mpl=4)
        flat = study["flat (no groups)"].inconsistent_operations.mean
        tight = study["tight groups"].inconsistent_operations.mean
        assert tight <= flat
