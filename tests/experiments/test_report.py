"""Rendering of tables, charts, and markdown sections."""

from __future__ import annotations

import math

from repro.experiments.figures import FigureResult, Series
from repro.experiments.report import (
    ascii_chart,
    figure_markdown,
    figure_table,
    format_table,
)
from repro.experiments.runner import Estimate


def toy_figure() -> FigureResult:
    def est(*samples):
        return Estimate.from_samples(list(samples))

    return FigureResult(
        figure_id="fig7",
        title="Throughput vs Multiprogramming Level",
        x_label="multiprogramming level",
        y_label="throughput",
        series=(
            Series("zero-epsilon", (1.0, 2.0, 3.0), (est(2), est(3, 4), est(3))),
            Series("low-epsilon", (1.0, 2.0, 3.0), (est(2), est(5), est(6))),
            Series("medium-epsilon", (1.0, 2.0, 3.0), (est(2), est(5.5), est(7))),
            Series("high-epsilon", (1.0, 2.0, 3.0), (est(2), est(6), est(8))),
        ),
        notes="toy data",
    )


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) == len(lines[0]) for line in lines[1:])


class TestFigureTable:
    def test_contains_all_series_and_points(self):
        text = figure_table(toy_figure())
        assert "zero-epsilon" in text
        assert "high-epsilon" in text
        # CI half-width shown only where repetitions disagreed.
        assert "3.50±" in text

    def test_handles_infinite_x(self):
        figure = FigureResult(
            "fig12",
            "t",
            "oil",
            "tput",
            series=(
                Series(
                    "TIL=10000",
                    (0.0, 1.0, math.inf),
                    tuple(Estimate.from_samples([v]) for v in (1, 2, 3)),
                ),
            ),
        )
        assert "inf" in figure_table(figure)


class TestAsciiChart:
    def test_contains_marks_and_legend(self):
        chart = ascii_chart(toy_figure())
        assert "o zero-epsilon" in chart
        assert "* high-epsilon" in chart
        assert "Throughput vs Multiprogramming Level" in chart

    def test_dimensions_respected(self):
        chart = ascii_chart(toy_figure(), width=30, height=8)
        # Line 0 is the title; the next `height` lines are the plot body.
        body = chart.splitlines()[1 : 1 + 8]
        assert len(body) == 8
        assert body[0].lstrip().startswith("8")  # y-max label
        assert all("|" in line or "+" in line for line in body)


class TestFigureMarkdown:
    def test_structure(self):
        text = figure_markdown(toy_figure(), "paper expects X")
        assert text.startswith("### fig7")
        assert "**Paper:** paper expects X" in text
        assert "```" in text
        assert "Shape checks" in text
