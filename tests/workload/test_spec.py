"""Workload specifications."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workload.spec import PAPER_WORKLOAD, WorkloadSpec


class TestPaperDefaults:
    def test_paper_parameters(self):
        spec = PAPER_WORKLOAD
        assert spec.n_objects == 1000
        assert spec.value_min == 1000 and spec.value_max == 9999
        assert spec.hot_set_size == 20
        assert spec.query_ops_mean == 20
        assert spec.update_ops_mean == 6

    def test_mean_ops_close_to_ten(self):
        # Paper section 6: "each transaction having an average of 10
        # operations".
        assert 9.0 <= PAPER_WORKLOAD.mean_ops_per_transaction <= 11.0

    def test_object_ids_range(self):
        ids = PAPER_WORKLOAD.object_ids
        assert ids[0] == 1000
        assert len(ids) == 1000


class TestValidation:
    def test_bad_object_count(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(n_objects=0)

    def test_hot_set_larger_than_db(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(n_objects=10, hot_set_size=11)

    def test_bad_fractions(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(hot_access_fraction=1.5)
        with pytest.raises(WorkloadError):
            WorkloadSpec(query_fraction=-0.1)

    def test_bad_value_range(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(value_min=100, value_max=50)

    def test_update_too_short_for_writes(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(update_ops_mean=3, update_ops_spread=0, writes_per_update=2)

    def test_bad_write_change(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(mean_write_change=0)

    def test_bad_partitions(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(n_partitions=0)

    def test_bad_large_change(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(large_change_fraction=2.0)
        with pytest.raises(WorkloadError):
            WorkloadSpec(large_change_min_mult=5.0, large_change_max_mult=2.0)
