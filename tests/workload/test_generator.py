"""The workload generator."""

from __future__ import annotations

import statistics

import pytest

from repro.lang.ast import ReadStmt, WriteStmt
from repro.workload.generator import (
    WorkloadGenerator,
    build_database,
    hot_set_for,
    partition_for_site,
)
from repro.workload.spec import PAPER_WORKLOAD, WorkloadSpec

SMALL = WorkloadSpec(n_objects=50, hot_set_size=10, n_partitions=5)


class TestBuildDatabase:
    def test_size_and_value_range(self):
        db = build_database(PAPER_WORKLOAD, seed=1)
        assert len(db) == 1000
        values = [obj.committed_value for obj in db.objects()]
        assert min(values) >= 1000 and max(values) <= 9999

    def test_deterministic_for_seed(self):
        a = build_database(SMALL, seed=7).committed_snapshot()
        b = build_database(SMALL, seed=7).committed_snapshot()
        assert a == b

    def test_different_seeds_differ(self):
        a = build_database(SMALL, seed=1).committed_snapshot()
        b = build_database(SMALL, seed=2).committed_snapshot()
        assert a != b


class TestHotSetAndPartitions:
    def test_hot_set_is_deterministic_and_sized(self):
        assert hot_set_for(SMALL) == hot_set_for(SMALL)
        assert len(hot_set_for(SMALL)) == SMALL.hot_set_size

    def test_partitions_cover_hot_set_disjointly(self):
        parts = [partition_for_site(SMALL, s) for s in range(1, 6)]
        combined = [obj for part in parts for obj in part]
        assert sorted(combined) == sorted(hot_set_for(SMALL))

    def test_sites_wrap_past_partition_count(self):
        assert partition_for_site(SMALL, 1) == partition_for_site(SMALL, 6)

    def test_more_partitions_than_hot_objects(self):
        spec = WorkloadSpec(n_objects=50, hot_set_size=3, n_partitions=10)
        part = partition_for_site(spec, 5)
        assert len(part) >= 1


class TestQueryGeneration:
    def test_query_shape(self):
        generator = WorkloadGenerator(PAPER_WORKLOAD, seed=1)
        program = generator.generate_query(til=100_000.0)
        assert program.kind == "query"
        assert program.transaction_limit == 100_000.0
        spread = PAPER_WORKLOAD.query_ops_spread
        assert (
            PAPER_WORKLOAD.query_ops_mean - spread
            <= program.read_count()
            <= PAPER_WORKLOAD.query_ops_mean + spread
        )
        assert program.write_count() == 0

    def test_query_reads_distinct_objects(self):
        generator = WorkloadGenerator(PAPER_WORKLOAD, seed=2)
        program = generator.generate_query(til=1.0)
        touched = program.objects_touched()
        assert len(touched) == len(set(touched))

    def test_query_is_hot_biased(self):
        generator = WorkloadGenerator(PAPER_WORKLOAD, seed=3)
        hot = set(generator.hot_set)
        hot_hits = total = 0
        for _ in range(30):
            for object_id in generator.generate_query(1.0).objects_touched():
                total += 1
                hot_hits += object_id in hot
        assert hot_hits / total > 0.6


class TestUpdateGeneration:
    def test_update_shape(self):
        generator = WorkloadGenerator(PAPER_WORKLOAD, seed=1)
        program = generator.generate_update(tel=10_000.0)
        assert program.kind == "update"
        ops = program.read_count() + program.write_count()
        spread = PAPER_WORKLOAD.update_ops_spread
        assert (
            PAPER_WORKLOAD.update_ops_mean - spread
            <= ops
            <= PAPER_WORKLOAD.update_ops_mean + spread
        )
        assert program.write_count() <= PAPER_WORKLOAD.writes_per_update

    def test_updates_are_read_modify_write(self):
        generator = WorkloadGenerator(PAPER_WORKLOAD, seed=1)
        program = generator.generate_update(tel=1.0)
        reads = {
            stmt.object_id: stmt.target
            for stmt in program.body
            if isinstance(stmt, ReadStmt)
        }
        for stmt in program.body:
            if isinstance(stmt, WriteStmt):
                assert stmt.object_id in reads

    def test_update_writes_stay_in_partition(self):
        partition = partition_for_site(PAPER_WORKLOAD, 3)
        generator = WorkloadGenerator(PAPER_WORKLOAD, seed=5, partition=partition)
        for _ in range(20):
            program = generator.generate_update(tel=1.0)
            for stmt in program.body:
                if isinstance(stmt, WriteStmt):
                    assert stmt.object_id in partition

    def test_mean_write_change_calibrated(self):
        spec = WorkloadSpec(large_change_fraction=0.0)
        generator = WorkloadGenerator(spec, seed=11)
        deltas = [abs(generator._write_delta()) for _ in range(2000)]
        assert statistics.mean(deltas) == pytest.approx(
            spec.mean_write_change, rel=0.1
        )

    def test_large_changes_present_when_configured(self):
        generator = WorkloadGenerator(PAPER_WORKLOAD, seed=11)
        deltas = [abs(generator._write_delta()) for _ in range(2000)]
        w = PAPER_WORKLOAD.mean_write_change
        big = sum(1 for d in deltas if d >= PAPER_WORKLOAD.large_change_min_mult * w)
        assert 0.05 < big / len(deltas) < 0.3


class TestMixAndStream:
    def test_mix_respects_query_fraction(self):
        generator = WorkloadGenerator(PAPER_WORKLOAD, seed=4)
        programs = generator.generate_mix(400, til=1.0, tel=1.0)
        queries = sum(1 for p in programs if p.is_query)
        assert 0.2 < queries / len(programs) < 0.4

    def test_stream_is_endless(self):
        generator = WorkloadGenerator(SMALL, seed=1)
        stream = generator.stream(til=1.0, tel=1.0)
        programs = [next(stream) for _ in range(25)]
        assert len(programs) == 25

    def test_deterministic_by_seed(self):
        a = WorkloadGenerator(SMALL, seed=9).generate_mix(10, 1.0, 1.0)
        b = WorkloadGenerator(SMALL, seed=9).generate_mix(10, 1.0, 1.0)
        assert a == b
