"""Trace files: writing and replaying client transaction loads."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import read_trace, split_for_clients, write_trace

SPEC = WorkloadSpec(n_objects=40, hot_set_size=8, n_partitions=4)


@pytest.fixture
def programs():
    return WorkloadGenerator(SPEC, seed=3).generate_mix(12, 50_000.0, 5_000.0)


class TestTraceFiles:
    def test_round_trip(self, tmp_path, programs):
        path = tmp_path / "load.trace"
        written = write_trace(path, programs, header="test workload")
        assert written == 12
        loaded = read_trace(path)
        assert loaded == programs

    def test_header_is_commented(self, tmp_path, programs):
        path = tmp_path / "load.trace"
        write_trace(path, programs, header="line one\nline two")
        text = path.read_text(encoding="utf-8")
        assert text.startswith("# line one\n# line two\n")

    def test_empty_trace_rejected_on_read(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("# nothing here\n", encoding="utf-8")
        with pytest.raises(WorkloadError, match="no transactions"):
            read_trace(path)


class TestSplitForClients:
    def test_round_robin(self, programs):
        shares = split_for_clients(programs, 3)
        assert [len(s) for s in shares] == [4, 4, 4]
        assert shares[0][0] is programs[0]
        assert shares[1][0] is programs[1]

    def test_uneven_split(self, programs):
        shares = split_for_clients(programs[:5], 2)
        assert [len(s) for s in shares] == [3, 2]

    def test_too_many_clients_rejected(self, programs):
        with pytest.raises(WorkloadError):
            split_for_clients(programs[:2], 3)

    def test_zero_clients_rejected(self, programs):
        with pytest.raises(WorkloadError):
            split_for_clients(programs, 0)
