"""Result inconsistency for aggregate queries (paper section 5.3.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.accounting import ValueRange
from repro.core.aggregates import (
    AggregateResult,
    aggregate_bounds,
    result_inconsistency,
)
from repro.errors import EvaluationError, SpecificationError


def ranges(*pairs: tuple[float, float]) -> list[ValueRange]:
    out = []
    for low, high in pairs:
        r = ValueRange(low)
        r.observe(high)
        out.append(r)
    return out


class TestAggregateResult:
    def test_midpoint_and_inconsistency(self):
        result = AggregateResult("sum", 90.0, 110.0)
        assert result.midpoint == 100.0
        assert result.inconsistency == 10.0

    def test_within(self):
        result = AggregateResult("avg", 10.0, 14.0)
        assert result.within(2.0)
        assert not result.within(1.9)

    def test_inverted_envelope_rejected(self):
        with pytest.raises(EvaluationError):
            AggregateResult("sum", 10.0, 5.0)


class TestAggregateBounds:
    def test_sum_envelope(self):
        result = aggregate_bounds("sum", ranges((1, 3), (10, 10)))
        assert (result.low, result.high) == (11.0, 13.0)

    def test_avg_is_the_papers_example(self):
        # min_result = sum of minima / n; max_result = sum of maxima / n;
        # result inconsistency is half the spread.
        result = aggregate_bounds("avg", ranges((100, 140), (200, 220)))
        assert result.low == 150.0
        assert result.high == 180.0
        assert result.inconsistency == 15.0

    def test_min_envelope(self):
        result = aggregate_bounds("min", ranges((1, 9), (4, 5)))
        assert (result.low, result.high) == (1.0, 5.0)

    def test_max_envelope(self):
        result = aggregate_bounds("max", ranges((1, 9), (4, 12)))
        assert (result.low, result.high) == (4.0, 12.0)

    def test_accepts_mapping(self):
        result = aggregate_bounds("sum", {7: ranges((2, 4))[0]})
        assert (result.low, result.high) == (2.0, 4.0)

    def test_case_insensitive_name(self):
        assert aggregate_bounds("SUM", ranges((0, 1))).name == "sum"

    def test_unknown_aggregate(self):
        with pytest.raises(SpecificationError):
            aggregate_bounds("median", ranges((0, 1)))

    def test_empty_observation_set(self):
        with pytest.raises(EvaluationError):
            aggregate_bounds("sum", [])

    def test_result_inconsistency_shorthand(self):
        assert result_inconsistency("sum", ranges((0, 10))) == 5.0


bounds_pairs = st.tuples(
    st.floats(-1e6, 1e6), st.floats(min_value=0, max_value=1e4)
).map(lambda t: (t[0], t[0] + t[1]))


@given(st.lists(bounds_pairs, min_size=1, max_size=12))
def test_property_true_value_always_inside_envelope(pairs):
    """Any per-object choice within its range yields an aggregate inside
    the envelope (the soundness property behind section 5.3.2)."""
    observed = ranges(*pairs)
    chosen = [(low + high) / 2.0 for low, high in pairs]
    for name, fn in (
        ("sum", sum),
        ("avg", lambda v: sum(v) / len(v)),
        ("min", min),
        ("max", max),
    ):
        envelope = aggregate_bounds(name, observed)
        value = fn(chosen)
        assert envelope.low - 1e-6 <= value <= envelope.high + 1e-6


@given(st.lists(bounds_pairs, min_size=1, max_size=12))
def test_property_zero_spread_means_zero_inconsistency(pairs):
    exact = ranges(*[(low, low) for low, _ in pairs])
    for name in ("sum", "avg", "min", "max"):
        assert result_inconsistency(name, exact) == 0.0
