"""Per-transaction inconsistency accounts."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.accounting import Direction, InconsistencyAccount, ValueRange
from repro.core.hierarchy import GroupCatalog
from repro.errors import SpecificationError


@pytest.fixture
def catalog() -> GroupCatalog:
    catalog = GroupCatalog()
    catalog.add_group("g")
    catalog.assign(1, "g")
    return catalog


class TestValueRange:
    def test_tracks_extremes(self):
        r = ValueRange(10.0)
        r.observe(4.0)
        r.observe(25.0)
        r.observe(7.0)
        assert r.minimum == 4.0
        assert r.maximum == 25.0
        assert r.spread == 21.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30))
    def test_extremes_match_builtin(self, values):
        r = ValueRange(values[0])
        for value in values[1:]:
            r.observe(value)
        assert r.minimum == min(values)
        assert r.maximum == max(values)


class TestInconsistencyAccount:
    def test_direction_validation(self, catalog):
        with pytest.raises(SpecificationError):
            InconsistencyAccount("sideways", catalog, 100.0)

    def test_admission_charges_and_counts(self, catalog):
        account = InconsistencyAccount(Direction.IMPORT, catalog, 100.0)
        assert account.admit(1, 40.0).admitted
        assert account.admit(1, 50.0).admitted
        assert account.total == 90.0
        assert account.inconsistent_operations == 2
        assert account.object_inconsistency(1) == 90.0

    def test_zero_amount_not_counted_as_inconsistent(self, catalog):
        account = InconsistencyAccount(Direction.IMPORT, catalog, 100.0)
        assert account.admit(1, 0.0).admitted
        assert account.inconsistent_operations == 0
        assert account.total == 0.0

    def test_rejection_changes_nothing(self, catalog):
        account = InconsistencyAccount(Direction.IMPORT, catalog, 100.0)
        account.admit(1, 90.0)
        outcome = account.admit(1, 20.0)
        assert not outcome.admitted
        assert account.total == 90.0
        assert account.inconsistent_operations == 1

    def test_object_limit_enforced(self, catalog):
        account = InconsistencyAccount(Direction.IMPORT, catalog, 1_000.0)
        outcome = account.admit(1, 60.0, object_limit=50.0)
        assert not outcome.admitted
        assert outcome.violated_level == "object"

    def test_group_limit_enforced(self, catalog):
        account = InconsistencyAccount(
            Direction.IMPORT, catalog, 1_000.0, group_limits={"g": 100.0}
        )
        assert account.admit(1, 80.0).admitted
        outcome = account.admit(1, 30.0)
        assert not outcome.admitted
        assert outcome.violated_level == "g"

    def test_would_admit_preview(self, catalog):
        account = InconsistencyAccount(Direction.EXPORT, catalog, 50.0)
        assert account.would_admit(1, 50.0)
        assert not account.would_admit(1, 51.0)
        assert account.total == 0.0

    def test_headroom(self, catalog):
        account = InconsistencyAccount(Direction.EXPORT, catalog, 100.0)
        account.admit(1, 25.0)
        assert account.headroom() == 75.0

    def test_value_observation(self, catalog):
        account = InconsistencyAccount(Direction.IMPORT, catalog, 100.0)
        account.observe_value(1, 10.0)
        account.observe_value(1, 30.0)
        account.observe_value(2, 5.0)
        assert account.value_range(1).spread == 20.0
        assert set(account.observed_objects()) == {1, 2}
        assert account.value_range(99) is None

    def test_level_snapshot(self, catalog):
        account = InconsistencyAccount(
            Direction.IMPORT, catalog, 100.0, group_limits={"g": 40.0}
        )
        account.admit(1, 10.0)
        snapshot = account.level_snapshot()
        assert snapshot["g"] == (10.0, 40.0)

    @given(st.lists(st.floats(min_value=0, max_value=50), max_size=30))
    def test_total_bounded_by_limit(self, amounts):
        catalog = GroupCatalog()
        catalog.add_group("g")
        catalog.assign(1, "g")
        account = InconsistencyAccount(Direction.IMPORT, catalog, 200.0)
        for amount in amounts:
            account.admit(1, amount)
        assert account.total <= 200.0 + 1e-9


class TestChangeTracking:
    """The O(changed) delta path behind the shard channel's fast sync."""

    def _mirror_of(self, account, catalog):
        mirror = InconsistencyAccount(Direction.IMPORT, catalog, 100.0)
        mirror.load_state(account.dump_state())
        return mirror

    def test_take_delta_none_when_clean(self, catalog):
        account = InconsistencyAccount(Direction.IMPORT, catalog, 100.0)
        account.track_changes()
        assert account.take_delta() is None
        account.admit(1, 0.0)  # consistent op: charges nothing
        assert account.take_delta() is None

    def test_delta_reproduces_dump(self, catalog):
        catalog.assign(2, "g")
        account = InconsistencyAccount(Direction.IMPORT, catalog, 100.0)
        account.admit(1, 10.0)
        account.observe_value(1, 5.0)
        mirror = self._mirror_of(account, catalog)
        account.track_changes()
        account.admit(2, 7.0)
        account.observe_value(1, 40.0)
        account.observe_value(2, 1.0)
        delta = account.take_delta()
        assert delta is not None
        mirror.apply_delta(delta)
        assert mirror.dump_state() == account.dump_state()
        # Drained: a second take ships nothing until the next change.
        assert account.take_delta() is None

    def test_loaded_state_does_not_echo_back(self, catalog):
        account = InconsistencyAccount(Direction.IMPORT, catalog, 100.0)
        account.track_changes()
        account.admit(1, 10.0)
        account.load_state(
            InconsistencyAccount(
                Direction.IMPORT, catalog, 100.0
            ).dump_state()
        )
        assert account.take_delta() is None

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["admit", "observe"]),
                st.integers(min_value=1, max_value=3),
                st.floats(min_value=0, max_value=20),
            ),
            max_size=40,
        )
    )
    def test_chained_deltas_match_full_dumps(self, events):
        catalog = GroupCatalog()
        catalog.add_group("g")
        for object_id in (1, 2, 3):
            catalog.assign(object_id, "g")
        account = InconsistencyAccount(Direction.IMPORT, catalog, 1e9)
        mirror = InconsistencyAccount(Direction.IMPORT, catalog, 1e9)
        mirror.load_state(account.dump_state())
        account.track_changes()
        for index, (kind, object_id, amount) in enumerate(events):
            if kind == "admit":
                account.admit(object_id, amount)
            else:
                account.observe_value(object_id, amount)
            if index % 3 == 2:  # sync every few events, like the channel
                delta = account.take_delta()
                if delta is not None:
                    mirror.apply_delta(delta)
        delta = account.take_delta()
        if delta is not None:
            mirror.apply_delta(delta)
        assert mirror.dump_state() == account.dump_state()
