"""TIL/TEL/OIL/OEL specifications and the standard epsilon levels."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.bounds import (
    HIGH_EPSILON,
    LOW_EPSILON,
    MEDIUM_EPSILON,
    STANDARD_LEVELS,
    UNBOUNDED,
    ZERO_EPSILON,
    ObjectBounds,
    TransactionBounds,
    level_by_name,
)
from repro.errors import SpecificationError


class TestTransactionBounds:
    def test_defaults_are_serializable(self):
        bounds = TransactionBounds()
        assert bounds.import_limit == 0.0
        assert bounds.export_limit == 0.0
        assert bounds.is_serializable

    def test_nonzero_bounds_are_not_serializable(self):
        assert not TransactionBounds(import_limit=1.0).is_serializable
        assert not TransactionBounds(export_limit=1.0).is_serializable

    @pytest.mark.parametrize("til,tel", [(-1, 0), (0, -1), (float("nan"), 0)])
    def test_invalid_limits_rejected(self, til, tel):
        with pytest.raises(SpecificationError):
            TransactionBounds(import_limit=til, export_limit=tel)

    def test_scaled(self):
        bounds = TransactionBounds(100.0, 10.0).scaled(2.5)
        assert bounds.import_limit == 250.0
        assert bounds.export_limit == 25.0

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(SpecificationError):
            TransactionBounds(1.0, 1.0).scaled(-1.0)

    def test_frozen(self):
        bounds = TransactionBounds(1.0, 1.0)
        with pytest.raises(AttributeError):
            bounds.import_limit = 5.0  # type: ignore[misc]

    @given(st.floats(min_value=0, max_value=1e12))
    def test_any_nonnegative_limit_accepted(self, limit):
        bounds = TransactionBounds(import_limit=limit)
        assert bounds.import_limit == limit


class TestObjectBounds:
    def test_defaults_unbounded(self):
        bounds = ObjectBounds()
        assert bounds.import_limit == UNBOUNDED
        assert bounds.export_limit == UNBOUNDED

    def test_explicit_limits(self):
        bounds = ObjectBounds(import_limit=100.0, export_limit=50.0)
        assert bounds.import_limit == 100.0
        assert bounds.export_limit == 50.0

    def test_negative_rejected(self):
        with pytest.raises(SpecificationError):
            ObjectBounds(import_limit=-5.0)


class TestStandardLevels:
    def test_paper_table_values(self):
        assert HIGH_EPSILON.til == 100_000 and HIGH_EPSILON.tel == 10_000
        assert MEDIUM_EPSILON.til == 50_000 and MEDIUM_EPSILON.tel == 5_000
        assert LOW_EPSILON.til == 10_000 and LOW_EPSILON.tel == 1_000
        assert ZERO_EPSILON.til == 0 and ZERO_EPSILON.tel == 0

    def test_levels_ordered_from_sr_to_loosest(self):
        tils = [level.til for level in STANDARD_LEVELS]
        assert tils == sorted(tils)
        assert STANDARD_LEVELS[0] is ZERO_EPSILON
        assert STANDARD_LEVELS[-1] is HIGH_EPSILON

    def test_zero_level_is_serializable(self):
        assert ZERO_EPSILON.transaction.is_serializable

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("high-epsilon", HIGH_EPSILON),
            ("high", HIGH_EPSILON),
            ("HIGH", HIGH_EPSILON),
            ("zero", ZERO_EPSILON),
            ("medium", MEDIUM_EPSILON),
            ("low-epsilon", LOW_EPSILON),
        ],
    )
    def test_lookup_by_name(self, name, expected):
        assert level_by_name(name) is expected

    def test_unknown_level_rejected(self):
        with pytest.raises(SpecificationError, match="unknown epsilon level"):
            level_by_name("giant")

    def test_unbounded_sentinel_is_infinite(self):
        assert math.isinf(UNBOUNDED)
