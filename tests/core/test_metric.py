"""Metric-space distance functions and the axiom validator."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.metric import (
    ScaledDistance,
    absolute_distance,
    check_metric_axioms,
    discrete_distance,
    euclidean_distance,
)
from repro.errors import MetricSpaceError

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestAbsoluteDistance:
    def test_basic_difference(self):
        assert absolute_distance(450_500_000, 450_400_000) == 100_000

    def test_zero_for_identical_states(self):
        assert absolute_distance(1234.5, 1234.5) == 0.0

    @given(finite_floats, finite_floats)
    def test_symmetry(self, u, v):
        assert absolute_distance(u, v) == absolute_distance(v, u)

    @given(finite_floats, finite_floats, finite_floats)
    def test_triangle_inequality(self, u, v, w):
        assert absolute_distance(u, w) <= (
            absolute_distance(u, v) + absolute_distance(v, w) + 1e-6
        )

    @given(finite_floats, finite_floats)
    def test_non_negative(self, u, v):
        assert absolute_distance(u, v) >= 0.0


class TestScaledDistance:
    def test_scales_by_weight(self):
        d = ScaledDistance(2.5)
        assert d(10, 4) == pytest.approx(15.0)

    def test_rejects_non_positive_weight(self):
        with pytest.raises(MetricSpaceError):
            ScaledDistance(0.0)
        with pytest.raises(MetricSpaceError):
            ScaledDistance(-1.0)

    def test_rejects_non_finite_weight(self):
        with pytest.raises(MetricSpaceError):
            ScaledDistance(math.inf)

    @given(st.floats(min_value=1e-3, max_value=1e3), finite_floats, finite_floats)
    def test_remains_a_metric(self, weight, u, v):
        d = ScaledDistance(weight)
        assert d(u, v) == d(v, u)
        assert d(u, u) == 0.0

    def test_repr_mentions_weight(self):
        assert "2.0" in repr(ScaledDistance(2.0))


class TestDiscreteDistance:
    def test_zero_iff_equal(self):
        assert discrete_distance(5, 5) == 0.0
        assert discrete_distance(5, 6) == 1.0

    @given(finite_floats, finite_floats, finite_floats)
    def test_triangle_inequality(self, u, v, w):
        assert discrete_distance(u, w) <= (
            discrete_distance(u, v) + discrete_distance(v, w)
        )


class TestEuclideanDistance:
    def test_pythagoras(self):
        assert euclidean_distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(MetricSpaceError):
            euclidean_distance((1, 2), (1, 2, 3))

    @given(
        st.lists(finite_floats, min_size=1, max_size=5),
        st.lists(finite_floats, min_size=1, max_size=5),
    )
    def test_symmetry(self, u, v):
        n = min(len(u), len(v))
        u, v = u[:n], v[:n]
        assert euclidean_distance(u, v) == pytest.approx(euclidean_distance(v, u))


class TestCheckMetricAxioms:
    def test_accepts_real_metrics(self):
        samples = [-10.0, -1.0, 0.0, 3.5, 100.0]
        check_metric_axioms(absolute_distance, samples)
        check_metric_axioms(discrete_distance, samples)
        check_metric_axioms(ScaledDistance(3.0), samples)

    def test_rejects_asymmetric_function(self):
        with pytest.raises(MetricSpaceError, match="symmetry"):
            check_metric_axioms(lambda u, v: max(u - v, 0.0), [0.0, 1.0, 2.0])

    def test_rejects_nonzero_self_distance(self):
        with pytest.raises(MetricSpaceError, match="identity"):
            check_metric_axioms(lambda u, v: 1.0, [0.0, 1.0])

    def test_rejects_triangle_violation(self):
        # Squared difference violates the triangle inequality.
        with pytest.raises(MetricSpaceError, match="triangle"):
            check_metric_axioms(
                lambda u, v: (u - v) ** 2, [0.0, 1.0, 2.0]
            )

    def test_rejects_negative_distance(self):
        def negative(u, v):
            if u == v:
                return 0.0
            return -1.0

        with pytest.raises(MetricSpaceError):
            check_metric_axioms(negative, [0.0, 1.0])

    @given(st.lists(finite_floats, min_size=2, max_size=6, unique=True))
    def test_absolute_distance_always_validates(self, samples):
        check_metric_axioms(absolute_distance, samples, tolerance=1e-6)
