"""Import/export divergence arithmetic (paper section 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.divergence import (
    EXPORT_POLICIES,
    export_divergence,
    import_divergence,
    max_export_divergence,
    sum_export_divergence,
)
from repro.core.metric import ScaledDistance
from repro.errors import SpecificationError

values = st.floats(min_value=-1e6, max_value=1e6)


class TestImportDivergence:
    def test_present_minus_proper(self):
        # Paper Figure 5: d = N4 - P1.
        assert import_divergence(present=5_400.0, proper=5_000.0) == 400.0

    def test_no_concurrent_updates_means_zero(self):
        assert import_divergence(3_000.0, 3_000.0) == 0.0

    def test_custom_distance(self):
        assert import_divergence(10.0, 4.0, ScaledDistance(2.0)) == 12.0

    @given(values, values)
    def test_symmetric_in_arguments(self, a, b):
        assert import_divergence(a, b) == import_divergence(b, a)


class TestExportDivergence:
    def test_max_over_concurrent_readers(self):
        # Paper Figure 6: d = max(|N5-P1|, |N5-P2|) over readers.
        d = max_export_divergence(7_000.0, [5_000.0, 6_500.0, 7_100.0])
        assert d == 2_000.0

    def test_sum_policy_is_wu_et_al(self):
        d = sum_export_divergence(7_000.0, [5_000.0, 6_500.0])
        assert d == 2_500.0

    def test_no_readers_exports_nothing(self):
        assert max_export_divergence(1_000.0, []) == 0.0
        assert sum_export_divergence(1_000.0, []) == 0.0

    def test_dispatch_by_name(self):
        readers = [1.0, 5.0]
        assert export_divergence(10.0, readers, policy="max") == 9.0
        assert export_divergence(10.0, readers, policy="sum") == 14.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(SpecificationError, match="unknown export policy"):
            export_divergence(1.0, [0.0], policy="median")

    def test_policy_registry_names(self):
        assert set(EXPORT_POLICIES) == {"max", "sum"}

    @given(values, st.lists(values, min_size=1, max_size=10))
    def test_sum_dominates_max(self, new_value, readers):
        assert sum_export_divergence(new_value, readers) >= (
            max_export_divergence(new_value, readers) - 1e-9
        )

    @given(values, st.lists(values, min_size=1, max_size=10))
    def test_max_equals_worst_single_reader(self, new_value, readers):
        expected = max(abs(new_value - p) for p in readers)
        assert max_export_divergence(new_value, readers) == expected
