"""Hierarchical inconsistency bounds: catalog structure and the ledger."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hierarchy import ROOT_GROUP, GroupCatalog, HierarchyLedger
from repro.errors import SpecificationError


def banking_catalog() -> GroupCatalog:
    """The paper's Figure 1 tree."""
    catalog = GroupCatalog()
    catalog.add_group("company")
    catalog.add_group("preferred")
    catalog.add_group("personal")
    catalog.add_group("com1", parent="company")
    catalog.add_group("com2", parent="company")
    catalog.add_group("div1", parent="com1")
    catalog.assign(1, "div1")
    catalog.assign(2, "com2")
    catalog.assign(3, "preferred")
    catalog.assign(4, "personal")
    return catalog


class TestGroupCatalog:
    def test_path_walks_to_root(self):
        catalog = banking_catalog()
        assert catalog.path(1) == ("div1", "com1", "company", ROOT_GROUP)
        assert catalog.path(3) == ("preferred", ROOT_GROUP)

    def test_independent_object_path_is_root_only(self):
        catalog = banking_catalog()
        assert catalog.path(999) == (ROOT_GROUP,)
        assert catalog.group_of(999) == ROOT_GROUP

    def test_duplicate_group_rejected(self):
        catalog = banking_catalog()
        with pytest.raises(SpecificationError):
            catalog.add_group("company")

    def test_unknown_parent_rejected(self):
        catalog = GroupCatalog()
        with pytest.raises(SpecificationError):
            catalog.add_group("child", parent="ghost")

    def test_root_name_rejected_as_group(self):
        catalog = GroupCatalog()
        with pytest.raises(SpecificationError):
            catalog.add_group(ROOT_GROUP)
        with pytest.raises(SpecificationError):
            catalog.add_group("")

    def test_assign_to_unknown_group_rejected(self):
        catalog = GroupCatalog()
        with pytest.raises(SpecificationError):
            catalog.assign(1, "nowhere")

    def test_reassign_moves_object(self):
        catalog = banking_catalog()
        catalog.assign(1, "personal")
        assert catalog.path(1) == ("personal", ROOT_GROUP)

    def test_reassign_moves_object_between_member_sets(self):
        """The reverse member index follows re-assignments exactly."""
        catalog = banking_catalog()
        assert catalog.members("div1") == (1,)
        assert catalog.members("personal") == (4,)
        catalog.assign(1, "personal")
        assert catalog.members("div1") == ()
        assert catalog.members("personal") == (4, 1)
        # ...and a ledger built before the move charges the new path.
        ledger = HierarchyLedger(
            catalog, 1e9, {"personal": 100.0, "com1": 100.0}
        )
        catalog.assign(1, "div1")
        assert catalog.members("personal") == (4,)
        assert catalog.members("div1") == (1,)
        assert ledger.try_charge(1, 60.0).admitted
        assert ledger.usage_of("com1") == 60.0
        assert ledger.usage_of("personal") == 0.0

    def test_members_of_unknown_group_rejected(self):
        with pytest.raises(SpecificationError):
            banking_catalog().members("ghost")

    def test_members_and_children(self):
        catalog = banking_catalog()
        assert catalog.members("div1") == (1,)
        assert set(catalog.children_of("company")) == {"com1", "com2"}
        assert catalog.parent_of("div1") == "com1"

    def test_root_has_no_parent(self):
        with pytest.raises(SpecificationError):
            banking_catalog().parent_of(ROOT_GROUP)

    def test_assign_many(self):
        catalog = banking_catalog()
        catalog.assign_many({10: "com1", 11: "com2"})
        assert catalog.group_of(10) == "com1"
        assert catalog.group_of(11) == "com2"

    def test_len_counts_groups(self):
        assert len(banking_catalog()) == 6


class TestHierarchyLedger:
    def test_charge_within_all_limits(self):
        catalog = banking_catalog()
        ledger = HierarchyLedger(
            catalog, 10_000, {"company": 4_000, "com1": 2_000}
        )
        outcome = ledger.check_and_charge(1, 1_500.0)
        assert outcome.admitted
        assert ledger.usage_of("com1") == 1_500.0
        assert ledger.usage_of("company") == 1_500.0
        assert ledger.total == 1_500.0

    def test_leaf_level_violation_reported(self):
        catalog = banking_catalog()
        ledger = HierarchyLedger(catalog, 10_000, {"com1": 2_000})
        outcome = ledger.check_and_charge(1, 2_500.0)
        assert not outcome.admitted
        assert outcome.violated_level == "com1"
        assert outcome.limit == 2_000

    def test_object_level_checked_first(self):
        catalog = banking_catalog()
        ledger = HierarchyLedger(catalog, 10_000, {"com1": 2_000})
        outcome = ledger.check_and_charge(1, 2_500.0, object_limit=1_000.0)
        assert outcome.violated_level == "object"

    def test_intermediate_level_violation(self):
        catalog = banking_catalog()
        ledger = HierarchyLedger(catalog, 10_000, {"company": 3_000})
        assert ledger.check_and_charge(1, 2_000.0).admitted
        outcome = ledger.check_and_charge(2, 1_500.0)
        assert not outcome.admitted
        assert outcome.violated_level == "company"

    def test_transaction_level_violation(self):
        catalog = banking_catalog()
        ledger = HierarchyLedger(catalog, 3_000)
        assert ledger.check_and_charge(3, 2_000.0).admitted
        outcome = ledger.check_and_charge(4, 1_500.0)
        assert not outcome.admitted
        assert outcome.violated_level == ROOT_GROUP

    def test_rejection_leaves_usage_untouched(self):
        catalog = banking_catalog()
        ledger = HierarchyLedger(catalog, 10_000, {"com1": 1_000, "company": 5_000})
        ledger.check_and_charge(2, 3_000.0)  # charges company via com2
        before = ledger.snapshot()
        assert not ledger.check_and_charge(1, 1_500.0).admitted
        assert ledger.snapshot() == before

    def test_sibling_budget_shared_through_parent(self):
        # com1 and com2 compete for the company budget (paper section 3.1).
        catalog = banking_catalog()
        ledger = HierarchyLedger(catalog, 100_000, {"company": 4_000})
        assert ledger.check_and_charge(1, 3_000.0).admitted  # via com1
        assert not ledger.check_and_charge(2, 1_500.0).admitted  # via com2
        assert ledger.check_and_charge(2, 1_000.0).admitted

    def test_unknown_group_limit_rejected(self):
        with pytest.raises(SpecificationError):
            HierarchyLedger(banking_catalog(), 100, {"ghost": 10})

    def test_negative_limits_rejected(self):
        catalog = banking_catalog()
        with pytest.raises(SpecificationError):
            HierarchyLedger(catalog, -1)
        with pytest.raises(SpecificationError):
            HierarchyLedger(catalog, 100, {"company": -5})

    def test_negative_charge_rejected(self):
        ledger = HierarchyLedger(banking_catalog(), 100)
        with pytest.raises(SpecificationError):
            ledger.try_charge(1, -1.0)

    def test_would_admit_does_not_charge(self):
        ledger = HierarchyLedger(banking_catalog(), 1_000)
        assert ledger.would_admit(1, 800.0)
        assert ledger.total == 0.0
        assert not ledger.would_admit(1, 1_200.0)

    def test_headroom(self):
        ledger = HierarchyLedger(banking_catalog(), 1_000)
        ledger.check_and_charge(3, 400.0)
        assert ledger.headroom() == 600.0

    def test_unlimited_groups_pass_through(self):
        ledger = HierarchyLedger(banking_catalog(), math.inf)
        assert ledger.check_and_charge(1, 1e12).admitted
        assert ledger.limit_of("com1") == math.inf


# -- property tests -----------------------------------------------------------------


@st.composite
def charges(draw):
    object_id = draw(st.sampled_from([1, 2, 3, 4]))
    amount = draw(st.floats(min_value=0, max_value=2_000))
    return object_id, amount


@settings(max_examples=60)
@given(st.lists(charges(), max_size=40))
def test_invariant_no_level_exceeds_its_limit(sequence):
    """After any charge sequence, usage <= limit at every level."""
    catalog = banking_catalog()
    limits = {"company": 4_000.0, "com1": 2_000.0, "preferred": 3_000.0}
    ledger = HierarchyLedger(catalog, 10_000.0, limits)
    for object_id, amount in sequence:
        ledger.check_and_charge(object_id, amount)
    for level, (usage, limit) in ledger.snapshot().items():
        assert usage <= limit + 1e-9, f"level {level} over budget"


@settings(max_examples=60)
@given(st.lists(charges(), max_size=40))
def test_invariant_parent_usage_is_sum_of_descendant_charges(sequence):
    """Admitted charges propagate 1:1 to every ancestor on the path."""
    catalog = banking_catalog()
    ledger = HierarchyLedger(
        catalog, 1e9, {"company": 1e9, "com1": 1e9, "preferred": 1e9}
    )
    admitted_total = 0.0
    company_total = 0.0
    for object_id, amount in sequence:
        if ledger.check_and_charge(object_id, amount).admitted:
            admitted_total += amount
            if object_id in (1, 2):
                company_total += amount
    assert ledger.total == pytest.approx(admitted_total)
    assert ledger.usage_of("company") == pytest.approx(company_total)


@settings(max_examples=40)
@given(
    st.lists(charges(), max_size=30),
    st.floats(min_value=0, max_value=20_000),
)
def test_invariant_total_never_exceeds_transaction_limit(sequence, limit):
    ledger = HierarchyLedger(banking_catalog(), limit)
    for object_id, amount in sequence:
        ledger.check_and_charge(object_id, amount)
    assert ledger.total <= limit + 1e-9


@st.composite
def random_hierarchies(draw):
    """A random group tree, object assignment, and per-group limits."""
    n_groups = draw(st.integers(min_value=0, max_value=6))
    catalog = GroupCatalog()
    names = [f"g{i}" for i in range(n_groups)]
    for index, name in enumerate(names):
        # Parent is the root or any earlier group — always acyclic.
        parent_index = draw(st.integers(min_value=-1, max_value=index - 1))
        catalog.add_group(
            name, None if parent_index < 0 else names[parent_index]
        )
    n_objects = draw(st.integers(min_value=1, max_value=8))
    for object_id in range(n_objects):
        target = draw(st.integers(min_value=-1, max_value=n_groups - 1))
        if target >= 0:
            catalog.assign(object_id, names[target])
    limited = draw(st.lists(st.sampled_from(names), unique=True)) if names else []
    limits = {
        name: draw(st.floats(min_value=0, max_value=5_000)) for name in limited
    }
    transaction_limit = draw(st.floats(min_value=0, max_value=10_000))
    return catalog, transaction_limit, limits, n_objects


@settings(max_examples=80)
@given(
    random_hierarchies(),
    st.data(),
)
def test_would_admit_iff_try_charge_succeeds(hierarchy, data):
    """The admission predicate and the charging logic never drift.

    For any hierarchy and any charge sequence, ``would_admit`` answers
    exactly whether ``try_charge`` will admit — and a rejected charge
    leaves every usage untouched.
    """
    catalog, transaction_limit, limits, n_objects = hierarchy
    ledger = HierarchyLedger(catalog, transaction_limit, limits)
    steps = data.draw(st.integers(min_value=0, max_value=25))
    for _ in range(steps):
        object_id = data.draw(st.integers(min_value=0, max_value=n_objects - 1))
        amount = data.draw(st.floats(min_value=0, max_value=3_000))
        predicted = ledger.would_admit(object_id, amount)
        before = ledger.snapshot()
        outcome = ledger.try_charge(object_id, amount)
        assert outcome.admitted == predicted
        if not outcome.admitted:
            assert ledger.snapshot() == before, "rejected charge mutated usage"
