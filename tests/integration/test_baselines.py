"""Baseline relationships: SR protocol vs ESR with zero bounds.

The paper treats zero-epsilon as "the SR case".  The two are not
operation-for-operation identical — ESR-zero may admit a conflicting
operation whose divergence is exactly zero, and a late write whose
concurrent readers have all committed — but they must agree on
everything observable: no inconsistency is ever imported or exported,
committed query results are exact, and their performance under the paper
workload is statistically indistinguishable.
"""

from __future__ import annotations

import pytest

from repro.sim.system import SimulationConfig, run_simulation
from repro.workload.spec import WorkloadSpec

SMALL = WorkloadSpec(n_objects=60, hot_set_size=10, n_partitions=5)


def run(protocol: str, til: float = 0.0, tel: float = 0.0, seed: int = 3):
    return run_simulation(
        SimulationConfig(
            mpl=4,
            til=til,
            tel=tel,
            protocol=protocol,
            workload=SMALL,
            duration_ms=8_000.0,
            warmup_ms=1_000.0,
            seed=seed,
        )
    )


class TestZeroEpsilonIsSR:
    def test_neither_admits_inconsistency(self):
        esr_zero = run("esr")
        sr = run("sr")
        assert esr_zero.metrics.total_imported == 0.0
        assert esr_zero.metrics.total_exported == 0.0
        assert sr.metrics.inconsistent_operations == 0
        assert esr_zero.inconsistent_operations == 0

    def test_throughputs_comparable(self):
        throughputs = {"esr": [], "sr": []}
        for seed in (3, 4, 5):
            throughputs["esr"].append(run("esr", seed=seed).throughput)
            throughputs["sr"].append(run("sr", seed=seed).throughput)
        esr_mean = sum(throughputs["esr"]) / 3
        sr_mean = sum(throughputs["sr"]) / 3
        assert esr_mean == pytest.approx(sr_mean, rel=0.35)

    def test_esr_with_bounds_beats_both(self):
        bounded = run("esr", til=100_000.0, tel=10_000.0)
        sr = run("sr")
        assert bounded.throughput > sr.throughput * 1.2


class TestProtocolSanity:
    def test_sr_never_consults_esr_cases(self):
        result = run("sr", til=100_000.0, tel=10_000.0)
        # Even with generous bounds configured, the SR protocol ignores
        # them entirely.
        assert result.inconsistent_operations == 0
        assert result.metrics.total_imported == 0.0
