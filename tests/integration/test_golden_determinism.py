"""Golden determinism: pinned end-to-end metrics for fixed configs/seeds.

The DES kernel promises bit-for-bit reproducibility, and the hot-path
work (the ready-queue fast path, the fused ledger walk) promises to be
*pure* optimisation — same results, less time.  These tests pin the
complete metric set of two representative runs (the paper's TSO/ESR
engine with a hierarchy, and the Wu et al. 2PL engine) to the values the
seed kernel produced.  Any future "optimisation" that reorders events,
changes a tie-break, or drifts the admission predicate fails loudly here
instead of silently warping every figure.

If a change is *meant* to alter event ordering (a semantic change to the
kernel or an engine), re-pin these values in the same commit and say so:
the goldens define the reference behaviour.
"""

from __future__ import annotations

import pytest

from repro.sim.system import SimulationConfig, run_simulation

#: (config, pinned metrics) — values captured from the single-heap seed
#: kernel (PR 1 tree) and required of every kernel since.
GOLDEN_RUNS = {
    "esr-hierarchy": (
        SimulationConfig(
            mpl=4,
            til=2_000.0,
            tel=500.0,
            protocol="esr",
            duration_ms=8_000.0,
            warmup_ms=1_000.0,
            query_group_limits=(("hot", 1_000.0),),
            seed=7,
        ),
        {
            "commits": 63,
            "aborts": 43,
            "commits_query": 18,
            "commits_update": 45,
            "inconsistent_operations": 4,
            "total_operations": 980,
            "waits": 12,
            "client_commits": (19, 20, 16, 8),
            "inconsistent_by_case": {
                "late-read-committed": 2,
                "read-uncommitted": 2,
            },
            "aborts_by_reason": {"bound-violation": 43},
        },
    ),
    "2pl": (
        SimulationConfig(
            mpl=4,
            til=2_000.0,
            tel=500.0,
            protocol="2pl",
            duration_ms=8_000.0,
            warmup_ms=1_000.0,
            seed=11,
        ),
        {
            "commits": 70,
            "aborts": 10,
            "commits_query": 14,
            "commits_update": 56,
            "inconsistent_operations": 17,
            "total_operations": 740,
            "waits": 48,
            "client_commits": (23, 17, 12, 18),
            "inconsistent_by_case": {"read-uncommitted": 17},
            "aborts_by_reason": {"deadlock": 10},
        },
    ),
}


def _observed(config: SimulationConfig) -> dict:
    result = run_simulation(config)
    metrics = result.metrics
    return {
        "commits": result.commits,
        "aborts": result.aborts,
        "commits_query": metrics.commits_query,
        "commits_update": metrics.commits_update,
        "inconsistent_operations": metrics.inconsistent_operations,
        "total_operations": metrics.total_operations,
        "waits": metrics.waits,
        "client_commits": result.client_commits,
        "inconsistent_by_case": dict(metrics.inconsistent_by_case),
        "aborts_by_reason": dict(metrics.aborts_by_reason),
    }


@pytest.mark.parametrize("name", sorted(GOLDEN_RUNS))
def test_run_matches_pinned_golden_values(name):
    config, expected = GOLDEN_RUNS[name]
    assert _observed(config) == expected


def test_repeated_runs_are_bit_identical():
    """The same config run twice in one process yields the same metrics."""
    config, _ = GOLDEN_RUNS["esr-hierarchy"]
    assert _observed(config) == _observed(config)
