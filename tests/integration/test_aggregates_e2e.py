"""Section 5.3.2 end-to-end: aggregate queries with result-inconsistency
checks, through both the in-process runtime and the TCP prototype."""

from __future__ import annotations

import pytest

from repro.core.bounds import HIGH_EPSILON, TransactionBounds
from repro.engine.database import Database
from repro.errors import TransactionAborted
from repro.lang.parser import parse_program
from repro.net.client import RemoteConnection
from repro.net.server import serve_forever
from repro.runtime import LocalClient

AVG_PROGRAM = parse_program(
    "BEGIN Query TIL = 5\n"
    "t1 = Read 1\n"
    "t2 = Read 2\n"
    "t3 = Read 3\n"
    'output("Average is: ", avg(t1, t2, t3))\n'
    "COMMIT\n"
)


@pytest.fixture
def client() -> LocalClient:
    db = Database()
    db.create_many((i, 100.0 * i) for i in range(1, 6))
    return LocalClient(db)


class TestLocalAggregateGuard:
    def test_exact_reads_pass_the_guard(self, client):
        result, restarts = client.run_program(AVG_PROGRAM)
        assert result.outputs == ["Average is: 200"]
        assert restarts == 0

    def test_direct_guard_call_with_zero_spread(self, client):
        session = client.begin("query", HIGH_EPSILON)
        session.read(1)
        session.read(2)
        session.aggregate_guard("avg", [1, 2])  # no exception
        session.commit()

    def test_guard_aborts_on_wide_range_from_concurrent_update(self, client):
        # Two reads of the same object straddle a concurrent update: the
        # second read imports 50 (fine for TIL=200) but the recorded
        # min/max range makes the average's result inconsistency
        # 50/2 = 25 per object / 1 object = 25 > ... with a single object
        # avg inconsistency = spread/2 = 25, which exceeds a TIL of 20?
        # No: TIL=200 admits the read; the *aggregate* check at output
        # time uses the same TIL, and 25 <= 200 passes.  Tighten only the
        # aggregate stage by checking against the envelope directly.
        session = client.begin("query", TransactionBounds(import_limit=200.0))
        session.read(1)  # 100
        updater = client.begin("update", HIGH_EPSILON)
        updater.write(1, 150.0)  # staged, uncommitted
        assert session.read(1) == 150.0  # ESR case 2, imports 50
        envelope_ranges = session.txn.account.value_range(1)
        assert envelope_ranges.spread == 50.0
        session.aggregate_guard("avg", [1])  # 25 <= 200: passes
        updater.abort()
        session.commit()

    def test_guard_rejection_via_ranges(self, client):
        # Drive the guard directly: a query whose account observed a wide
        # range for an object, but whose TIL is small.
        session = client.begin("query", TransactionBounds(import_limit=4.0))
        session.read(1)
        # Simulate a second read that saw a different value (as repeated
        # reads through concurrent updates would record).
        session.txn.account.observe_value(1, 120.0)
        with pytest.raises(TransactionAborted, match="result inconsistency"):
            session.aggregate_guard("avg", [1])
        assert not session.txn.is_active

    def test_guard_ignores_unobserved_objects(self, client):
        session = client.begin("query", HIGH_EPSILON)
        session.aggregate_guard("avg", [99])  # nothing observed: no-op
        session.commit()


class TestRemoteAggregateGuard:
    @pytest.fixture
    def server(self):
        db = Database()
        db.create_many((i, 100.0 * i) for i in range(1, 6))
        srv = serve_forever(db)
        yield srv
        srv.shutdown()
        srv.server_close()

    def test_avg_program_over_tcp(self, server):
        with RemoteConnection("127.0.0.1", server.port) as connection:
            result, _ = connection.run_program(AVG_PROGRAM)
        assert result.outputs == ["Average is: 200"]

    def test_remote_guard_rejects_wide_ranges(self, server):
        with RemoteConnection("127.0.0.1", server.port) as connection:
            txn = connection.begin("query", 4.0)
            txn.read(1)
            txn._ranges[1] = (100.0, 120.0)  # as repeated reads would record
            with pytest.raises(TransactionAborted, match="result inconsistency"):
                txn.aggregate_guard("avg", [1])
            assert txn.finished

    def test_remote_guard_passes_exact_reads(self, server):
        with RemoteConnection("127.0.0.1", server.port) as connection:
            with connection.begin("query", 5.0) as txn:
                txn.read(1)
                txn.read(2)
                txn.aggregate_guard("min", [1, 2])
