"""Hierarchical bounds end-to-end: language → runtime → engine.

A hierarchical program (LIMIT lines) must carry its group limits through
compilation into the engine's ledger, on both the in-process runtime and
the TCP prototype — and a group violation must abort the transaction
even when the TIL has headroom.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import HIGH_EPSILON, ObjectBounds
from repro.core.hierarchy import GroupCatalog
from repro.engine.database import Database
from repro.errors import TransactionAborted
from repro.lang.parser import parse_program
from repro.net.client import RemoteConnection
from repro.net.server import serve_forever
from repro.runtime import LocalClient

PROGRAM = parse_program(
    "BEGIN Query TIL 10000\n"
    "LIMIT company 4000\n"
    "LIMIT com1 200\n"
    "t1 = Read 101\n"
    "t2 = Read 201\n"
    'output("Sum is: ", t1+t2)\n'
    "COMMIT\n"
)


def build_db() -> Database:
    catalog = GroupCatalog()
    catalog.add_group("company")
    catalog.add_group("com1", parent="company")
    db = Database(catalog=catalog)
    db.create_object(101, 4_000.0, group="com1")
    db.create_object(201, 6_000.0, group="company")
    return db


class TestLocalRuntime:
    def test_clean_run_reports_sum(self):
        client = LocalClient(build_db())
        result, restarts = client.run_program(PROGRAM)
        assert result.outputs == ["Sum is: 10000"]
        assert restarts == 0

    def test_group_violation_aborts_despite_til_headroom(self):
        from repro.engine.results import Rejected

        client = LocalClient(build_db())
        # The query begins first (older timestamp); a teller then commits
        # +500 on the com1 account, so the query's read of it arrives
        # late, importing 500 through com1 (limit 200) although the TIL
        # (100,000) easily covers it.
        hier = client.manager.begin(
            "query",
            HIGH_EPSILON.transaction,
            group_limits={"company": 4_000.0, "com1": 200.0},
        )
        with client.begin("update", HIGH_EPSILON) as teller:
            teller.write(101, teller.read(101) + 500.0)
        outcome = client.manager.read(hier, 101)
        assert isinstance(outcome, Rejected)
        assert outcome.violated_level == "com1"

    def test_object_limit_override_from_program(self):
        source = (
            "BEGIN Query TIL 10000\n"
            "LIMIT object 101 50\n"
            "t1 = Read 101\n"
            "COMMIT\n"
        )
        client = LocalClient(build_db())
        program = parse_program(source)
        from repro.lang.compiler import compile_program

        compiled = compile_program(program)
        assert compiled.object_limits == {101: 50.0}
        result, _ = client.run_program(program)
        assert result.reads == 1


class TestNetworkedRuntime:
    @pytest.fixture
    def server(self):
        srv = serve_forever(build_db())
        yield srv
        srv.shutdown()
        srv.server_close()

    def test_hierarchical_program_over_tcp(self, server):
        with RemoteConnection("127.0.0.1", server.port) as connection:
            result, restarts = connection.run_program(PROGRAM)
        assert result.outputs == ["Sum is: 10000"]

    def test_group_limits_transmitted_and_enforced(self, server):
        with RemoteConnection("127.0.0.1", server.port) as connection:
            # Pin an old timestamp for the hierarchical query, then let a
            # teller commit +500 on the com1 account; the query's late
            # read must be rejected at the com1 level despite TIL room.
            query = connection.begin(
                "query", 10_000.0, group_limits={"com1": 200.0}
            )
            with connection.begin("update", HIGH_EPSILON) as teller:
                teller.write(101, teller.read(101) + 500.0)
            with pytest.raises(TransactionAborted) as info:
                query.read(101)
            assert info.value.reason == "bound-violation"
            assert "com1" in str(info.value)
