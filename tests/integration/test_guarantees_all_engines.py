"""The accuracy guarantee, re-proved on every engine.

The TSO version lives in ``test_guarantees.py``; this file drives the
same randomly interleaved schedules through the lock-based divergence
control (2PL) and MVTO engines:

* **2PL divergence control** — a committed query's result is within TIL
  of the as-of-read-time reference, the same promise the TSO engine
  makes (the divergence a read-through imports is measured against the
  committed value at that instant);
* **MVTO** — a committed query's result is *exactly* the snapshot at
  its begin timestamp, always: multi-versioning trades freshness for
  serializability.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import TransactionBounds
from repro.engine.database import Database
from repro.engine.mvto import MVTOManager
from repro.engine.results import Granted, MustWait, Rejected
from repro.engine.twopl import TwoPhaseManager

N_OBJECTS = 6


@st.composite
def schedules(draw):
    order = draw(st.permutations(list(range(N_OBJECTS))))
    slots = [
        draw(
            st.lists(
                st.tuples(
                    st.integers(0, N_OBJECTS - 1),
                    st.integers(-3_000, 3_000),
                    st.booleans(),
                ),
                max_size=2,
            )
        )
        for _ in range(N_OBJECTS + 1)
    ]
    return list(order), slots


def fresh(manager_cls, **kwargs):
    db = Database()
    db.create_many((i, 5_000.0) for i in range(N_OBJECTS))
    return manager_cls(db, **kwargs)


def run_update(manager, object_id, delta, commit):
    txn = manager.begin(
        "update", TransactionBounds(export_limit=1e12)
    )
    read = manager.read(txn, object_id)
    if not isinstance(read, Granted):
        manager.abort(txn)
        return
    write = manager.write(txn, object_id, read.value + delta)
    if not isinstance(write, Granted):
        if txn.is_active:
            manager.abort(txn)
        return
    if commit:
        manager.commit(txn)
    else:
        manager.abort(txn)


class TestTwoPhaseGuarantee:
    @settings(max_examples=50, deadline=None)
    @given(schedules(), st.sampled_from([0.0, 500.0, 5_000.0, 1e9]))
    def test_committed_query_within_til(self, schedule, til):
        order, slots = schedule
        manager = fresh(TwoPhaseManager)
        query = manager.begin("query", TransactionBounds(import_limit=til))
        total = 0.0
        reference = 0.0
        for slot_index, object_id in enumerate(order):
            for target, delta, commit in slots[slot_index]:
                run_update(manager, target, delta, commit)
            outcome = manager.read(query, object_id)
            if isinstance(outcome, MustWait):
                # Single-threaded driver: the blocker is long gone only
                # if it committed/aborted; here it means a live staged
                # write from run_update that conflicted — which
                # run_update always resolves, so waits cannot occur.
                raise AssertionError("unexpected wait")
            assert isinstance(outcome, Granted)
            # The committed value at this instant is the serial reference
            # for this read; the admitted divergence is vs that value.
            reference += manager.database.get(object_id).committed_value
            total += outcome.value
        imported = query.imported
        manager.commit(query)
        assert imported <= til + 1e-9
        assert abs(total - reference) <= imported + 1e-6

    @settings(max_examples=30, deadline=None)
    @given(schedules())
    def test_zero_til_is_exact(self, schedule):
        order, slots = schedule
        manager = fresh(TwoPhaseManager)
        query = manager.begin("query", TransactionBounds())
        total = reference = 0.0
        for slot_index, object_id in enumerate(order):
            for target, delta, commit in slots[slot_index]:
                run_update(manager, target, delta, commit)
            outcome = manager.read(query, object_id)
            assert isinstance(outcome, Granted)
            reference += manager.database.get(object_id).committed_value
            total += outcome.value
        manager.commit(query)
        assert total == pytest.approx(reference)


class TestMVTOGuarantee:
    @settings(max_examples=50, deadline=None)
    @given(schedules())
    def test_committed_query_is_exact_snapshot(self, schedule):
        order, slots = schedule
        manager = fresh(MVTOManager)
        snapshot = manager.database.committed_snapshot()
        query = manager.begin("query")
        expected = sum(snapshot[object_id] for object_id in order)
        total = 0.0
        for slot_index, object_id in enumerate(order):
            for target, delta, commit in slots[slot_index]:
                run_update(manager, target, delta, commit)
            outcome = manager.read(query, object_id)
            assert isinstance(outcome, Granted)  # MVTO queries never fail
            total += outcome.value
        manager.commit(query)
        assert total == pytest.approx(expected)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, N_OBJECTS - 1),
                st.integers(-2_000, 2_000),
                st.booleans(),
            ),
            max_size=25,
        )
    )
    def test_final_state_reflects_committed_deltas(self, actions):
        manager = fresh(MVTOManager)
        expected = dict(manager.database.committed_snapshot())
        for object_id, delta, commit in actions:
            before = manager.database.get(object_id).committed_value
            txn = manager.begin(
                "update", TransactionBounds(export_limit=1e12)
            )
            read = manager.read(txn, object_id)
            write = manager.write(txn, object_id, read.value + delta)
            if not isinstance(write, Granted):
                if txn.is_active:
                    manager.abort(txn)
                continue
            if commit:
                manager.commit(txn)
                expected[object_id] = before + delta
            else:
                manager.abort(txn)
        assert manager.database.committed_snapshot() == pytest.approx(expected)
