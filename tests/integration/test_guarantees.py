"""End-to-end correctness guarantees, property-tested.

The central promise of ESR (paper section 3.2.1): if a query ET with a
given TIL commits, its result is within TIL of the result some serial
execution would have produced.  For sum queries under timestamp ordering
the serial reference is the sum of the query's *proper values* — the
committed values at the query's timestamp — so the guarantee reduces to::

    |sum(values read) - sum(proper values)| <= imported <= TIL

These tests drive randomly interleaved schedules of one query against
many update transactions through the real engine and assert exactly
that, plus the dual guarantees: under SR (and under ESR with zero
bounds) a committed query returns the exact snapshot sum, and the
export side never exceeds TEL.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import TransactionBounds
from repro.engine.database import Database
from repro.errors import TransactionAborted
from repro.runtime import LocalClient, WouldBlock

N_OBJECTS = 8


def fresh_client(protocol: str = "esr", shards: int = 1) -> LocalClient:
    db = Database()
    db.create_many((i, 5_000.0) for i in range(N_OBJECTS))
    return LocalClient(db, protocol=protocol, shards=shards)


@st.composite
def schedules(draw):
    """A read order over all objects plus interleaved update actions.

    Each interleaving slot holds 0–2 update actions; an update action is
    (object, delta, commits?).
    """
    order = draw(st.permutations(list(range(N_OBJECTS))))
    slots = []
    for _ in range(N_OBJECTS + 1):
        actions = draw(
            st.lists(
                st.tuples(
                    st.integers(0, N_OBJECTS - 1),
                    st.integers(-3_000, 3_000),
                    st.booleans(),
                ),
                max_size=2,
            )
        )
        slots.append(actions)
    return list(order), slots


def run_update(client: LocalClient, object_id: int, delta: int, commit: bool):
    """One RMW update transaction; silently drops if it conflicts."""
    session = client.begin(
        "update", TransactionBounds(export_limit=1e12)
    )
    try:
        value = session.read(object_id)
        session.write(object_id, value + delta)
    except (TransactionAborted, WouldBlock):
        if session.txn.is_active:
            session.abort()
        return
    if commit:
        session.commit()
    else:
        session.abort()


def drive_query(client, til: float, order, slots):
    """Run the interleaved schedule; returns (read_sum, imported) or None
    if the query aborted."""
    snapshot = client.database.committed_snapshot()
    proper_sum = sum(snapshot[i] for i in order)
    query = client.begin("query", TransactionBounds(import_limit=til))
    total = 0.0
    for slot_index, object_id in enumerate(order):
        for target, delta, commit in slots[slot_index]:
            run_update(client, target, delta, commit)
        while True:
            try:
                total += query.read(object_id)
                break
            except WouldBlock:
                # Single-threaded driver: the blocker is one of our own
                # updates that failed mid-flight; none are left active
                # here, so this cannot happen — but fail loudly if it does.
                raise AssertionError("unexpected strict-ordering block")
            except TransactionAborted:
                return None, proper_sum
    for target, delta, commit in slots[-1]:
        run_update(client, target, delta, commit)
    imported = query.inconsistency
    query.commit()
    return (total, imported), proper_sum


class TestImportGuarantee:
    @pytest.mark.parametrize("shards", [1, 3])
    @settings(max_examples=60, deadline=None)
    @given(schedules(), st.sampled_from([0.0, 500.0, 2_000.0, 10_000.0, 1e9]))
    def test_committed_query_result_within_til(self, shards, schedule, til):
        order, slots = schedule
        client = fresh_client(shards=shards)
        outcome, proper_sum = drive_query(client, til, order, slots)
        if outcome is None:
            return  # aborted: nothing was promised
        total, imported = outcome
        assert imported <= til + 1e-9
        assert abs(total - proper_sum) <= imported + 1e-6
        assert abs(total - proper_sum) <= til + 1e-6

    @pytest.mark.parametrize("shards", [1, 3])
    @settings(max_examples=30, deadline=None)
    @given(schedules())
    def test_zero_til_query_is_exact(self, shards, schedule):
        order, slots = schedule
        client = fresh_client(shards=shards)
        outcome, proper_sum = drive_query(client, 0.0, order, slots)
        if outcome is None:
            return
        total, imported = outcome
        assert imported == 0.0
        assert total == pytest.approx(proper_sum)


class TestSerializableBaseline:
    @settings(max_examples=30, deadline=None)
    @given(schedules())
    def test_sr_committed_query_returns_snapshot_sum(self, schedule):
        order, slots = schedule
        client = fresh_client(protocol="sr")
        snapshot = client.database.committed_snapshot()
        expected = sum(snapshot[i] for i in order)
        query = client.begin("query", TransactionBounds())
        total = 0.0
        for slot_index, object_id in enumerate(order):
            for target, delta, commit in slots[slot_index]:
                run_update(client, target, delta, commit)
            try:
                total += query.read(object_id)
            except (TransactionAborted, WouldBlock):
                if query.txn.is_active:
                    query.abort()
                return
        query.commit()
        assert total == pytest.approx(expected)


class TestAtomicityUnderConcurrency:
    @pytest.mark.parametrize("shards", [1, 3])
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, N_OBJECTS - 1),
                st.integers(-2_000, 2_000),
                st.booleans(),
            ),
            max_size=30,
        )
    )
    def test_final_state_reflects_exactly_the_committed_deltas(
        self, shards, actions
    ):
        """Shadow-paging recovery: aborted updates leave no trace, and the
        final state is the initial state plus the committed deltas."""
        client = fresh_client(shards=shards)
        expected = dict(client.database.committed_snapshot())
        for object_id, delta, commit in actions:
            before = client.database.get(object_id).committed_value
            session = client.begin(
                "update", TransactionBounds(export_limit=1e12)
            )
            try:
                value = session.read(object_id)
                session.write(object_id, value + delta)
            except (TransactionAborted, WouldBlock):
                if session.txn.is_active:
                    session.abort()
                continue
            if commit:
                session.commit()
                expected[object_id] = before + delta
            else:
                session.abort()
        assert client.database.committed_snapshot() == pytest.approx(expected)


class TestExportGuarantee:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_exported_inconsistency_never_exceeds_tel(self, shards):
        rng = random.Random(42)
        client = fresh_client(shards=shards)
        tel = 1_500.0
        for _ in range(200):
            # A query with a newer timestamp reads; an older update then
            # writes late (case 3), charged against its TEL.
            update = client.begin(
                "update", TransactionBounds(export_limit=tel)
            )
            query = client.begin("query", TransactionBounds(import_limit=1e9))
            object_id = rng.randrange(N_OBJECTS)
            query.read(object_id)
            value = rng.uniform(3_000, 7_000)
            try:
                update.write(object_id, value)
            except TransactionAborted:
                query.abort()
                continue
            assert update.txn.exported <= tel + 1e-9
            update.commit()
            query.abort()
