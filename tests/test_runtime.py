"""The in-process runtime (LocalClient / LocalSession)."""

from __future__ import annotations

import pytest

from repro.core.bounds import HIGH_EPSILON, TransactionBounds
from repro.engine.database import Database
from repro.errors import TransactionAborted
from repro.lang.parser import parse_program
from repro.runtime import LocalClient, WouldBlock


@pytest.fixture
def client() -> LocalClient:
    db = Database()
    db.create_many((i, float(i) * 100.0) for i in range(1, 11))
    return LocalClient(db)


class TestLocalSession:
    def test_read_write_commit(self, client):
        with client.begin("update", HIGH_EPSILON) as txn:
            value = txn.read(4)
            txn.write(4, value + 1)
        assert client.database.get(4).committed_value == 401.0

    def test_context_manager_aborts_on_exception(self, client):
        with pytest.raises(ValueError):
            with client.begin("update", HIGH_EPSILON) as txn:
                txn.write(4, 999.0)
                raise ValueError("oops")
        assert client.database.get(4).committed_value == 400.0

    def test_numeric_bounds_shortcut(self, client):
        session = client.begin("query", 5_000.0)
        assert session.txn.bounds.import_limit == 5_000.0
        session.commit()
        session = client.begin("update", 700.0)
        assert session.txn.bounds.export_limit == 700.0
        session.abort()

    def test_rejection_raises_transaction_aborted(self, client):
        stale = client.begin("update", TransactionBounds(0, 0))
        with client.begin("query", 0.0) as query:
            query.read(3)
            with pytest.raises(TransactionAborted):
                stale.write(3, 1.0)

    def test_would_block_raised_for_strict_wait(self, client):
        writer = client.begin("update", HIGH_EPSILON)
        writer.write(5, 555.0)
        reader = client.begin("query", 0.0)
        with pytest.raises(WouldBlock) as info:
            reader.read(5)
        assert info.value.blocking_transaction == writer.transaction_id
        writer.commit()
        # After the blocker commits, the retried read is late but the value
        # is unchanged relative to... actually it sees the newer committed
        # write, so with zero bounds it aborts; with bounds it succeeds.
        retry = client.begin("query", HIGH_EPSILON)
        assert retry.read(5) == 555.0
        retry.commit()
        reader.abort()

    def test_inconsistency_property(self, client):
        writer = client.begin("update", HIGH_EPSILON)
        writer.write(5, 540.0)
        query = client.begin("query", HIGH_EPSILON)
        query.read(5)
        assert query.inconsistency == 40.0
        query.commit()
        writer.commit()


class TestRunProgram:
    def test_query_program(self, client):
        program = parse_program(
            "BEGIN Query TIL = 100000\n"
            "t1 = Read 1\n"
            "t2 = Read 2\n"
            'output("Sum is: ", t1+t2)\n'
            "COMMIT\n"
        )
        result, restarts = client.run_program(program)
        assert result.outputs == ["Sum is: 300"]
        assert restarts == 0

    def test_update_program_commits(self, client):
        program = parse_program(
            "BEGIN Update TEL = 10000\nt1 = Read 2\nWrite 2 , t1+10\nCOMMIT\n"
        )
        client.run_program(program)
        assert client.database.get(2).committed_value == 210.0

    def test_abort_program_leaves_no_trace(self, client):
        program = parse_program(
            "BEGIN Update TEL = 10000\nWrite 2 , 999\nABORT\n"
        )
        result, _ = client.run_program(program)
        assert result.aborted_by_program
        assert client.database.get(2).committed_value == 200.0

    def test_retry_until_commit(self, client):
        # Force one abort by pre-staging a conflicting state: a query with
        # a newer timestamp reads object 3, making an older update's write
        # late.  run_program then restarts with a fresh timestamp and wins.
        program = parse_program(
            "BEGIN Update TEL = 0\nt1 = Read 3\nWrite 3 , t1+1\nCOMMIT\n"
        )
        result, restarts = client.run_program(program)
        assert restarts == 0
        assert client.database.get(3).committed_value == 301.0
