"""The exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    BoundViolation,
    EvaluationError,
    ExperimentError,
    InvalidOperation,
    LanguageError,
    LexError,
    MetricSpaceError,
    ParseError,
    ProtocolError,
    ReproError,
    ServerError,
    SpecificationError,
    TransactionAborted,
    TransactionError,
    UnknownObjectError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            SpecificationError,
            MetricSpaceError,
            TransactionError,
            TransactionAborted,
            BoundViolation,
            InvalidOperation,
            UnknownObjectError,
            LanguageError,
            LexError,
            ParseError,
            EvaluationError,
            ProtocolError,
            ServerError,
            WorkloadError,
            ExperimentError,
        ],
    )
    def test_everything_is_a_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_key_subtyping(self):
        assert issubclass(MetricSpaceError, SpecificationError)
        assert issubclass(BoundViolation, TransactionAborted)
        assert issubclass(UnknownObjectError, InvalidOperation)
        assert issubclass(LexError, LanguageError)
        assert issubclass(ParseError, LanguageError)


class TestPayloads:
    def test_transaction_aborted_carries_reason(self):
        exc = TransactionAborted("boom", transaction_id=7, reason="late-read")
        assert exc.transaction_id == 7
        assert exc.reason == "late-read"

    def test_bound_violation_details(self):
        exc = BoundViolation(
            "over budget",
            transaction_id=3,
            level="company",
            attempted=5_000.0,
            limit=4_000.0,
        )
        assert exc.reason == "bound-violation"
        assert exc.level == "company"
        assert exc.attempted == 5_000.0
        assert exc.limit == 4_000.0

    def test_lex_error_position_in_message(self):
        exc = LexError("bad char", line=3, column=9)
        assert "line 3" in str(exc)
        assert exc.column == 9

    def test_parse_error_optional_line(self):
        with_line = ParseError("oops", line=2)
        without = ParseError("oops")
        assert "line 2" in str(with_line)
        assert "line" not in str(without)

    def test_catch_all_pattern(self):
        # The documented usage: one except clause for the whole library.
        with pytest.raises(ReproError):
            raise BoundViolation("x")
