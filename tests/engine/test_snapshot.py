"""The epsilon snapshot read cache: store mechanics, fast-path reads,
bound-exactly-at-limit edges, and the engine-equivalence oracle."""

from __future__ import annotations

import random

import pytest

from repro.core.bounds import ObjectBounds, TransactionBounds
from repro.core.hierarchy import ROOT_GROUP, GroupCatalog
from repro.engine.database import Database
from repro.engine.manager import TransactionManager
from repro.engine.results import CASE_LATE_READ, Granted
from repro.engine.snapshot import SnapshotStore, snapshot_read


def grouped_database() -> Database:
    catalog = GroupCatalog()
    catalog.add_group("hot")
    catalog.add_group("cold")
    database = Database(catalog=catalog)
    for object_id in (1, 2, 3):
        database.create_object(object_id, 10.0 * object_id, group="hot")
    for object_id in (4, 5):
        database.create_object(object_id, 10.0 * object_id, group="cold")
    return database


def make_manager(database: Database | None = None) -> TransactionManager:
    return TransactionManager(
        database if database is not None else grouped_database(),
        snapshot_cache=True,
    )


class TestSnapshotStore:
    def test_bootstrap_publishes_every_object(self):
        manager = make_manager()
        store = manager.snapshot
        assert store is not None and len(store) == 5
        entry = store.entry(3)
        assert entry.value == 30.0
        assert entry.cumulative_divergence == 0.0
        assert entry.pending_delta == 0.0

    def test_disabled_by_default(self):
        assert TransactionManager(grouped_database()).snapshot is None

    def test_non_esr_protocol_never_builds_a_store(self):
        manager = TransactionManager(
            grouped_database(), protocol="sr", snapshot_cache=True
        )
        assert manager.snapshot is None

    def test_publish_accumulates_cumulative_divergence(self):
        manager = make_manager()
        for value in (13.0, 18.0):
            writer = manager.begin("update", TransactionBounds(export_limit=1e9))
            manager.write(writer, 1, value)
            manager.commit(writer)
        entry = manager.snapshot.entry(1)
        assert entry.value == 18.0
        assert entry.cumulative_divergence == 3.0 + 5.0

    def test_pending_write_tracked_and_cleared_on_commit(self):
        manager = make_manager()
        store = manager.snapshot
        writer = manager.begin("update", TransactionBounds(export_limit=1e9))
        manager.write(writer, 1, 14.0)
        assert store.entry(1).pending_delta == 4.0
        assert store.group_inflight("hot") == 4.0
        assert store.root_inflight == 4.0
        assert store.group_inflight("cold") == 0.0
        manager.commit(writer)
        assert store.entry(1).pending_delta == 0.0
        assert store.root_inflight == 0.0
        assert store.entry(1).value == 14.0

    def test_pending_write_cleared_on_abort(self):
        manager = make_manager()
        store = manager.snapshot
        writer = manager.begin("update", TransactionBounds(export_limit=1e9))
        manager.write(writer, 2, 99.0)
        assert store.entry(2).pending_delta == 79.0
        manager.abort(writer, "test")
        assert store.entry(2).pending_delta == 0.0
        assert store.root_inflight == 0.0
        assert store.entry(2).value == 20.0  # committed value untouched


class TestCachedReadFastPath:
    def test_clean_hit_is_free(self):
        manager = make_manager()
        query = manager.begin("query", TransactionBounds(import_limit=0.0))
        outcome = manager.read_cached(query, 1)
        assert outcome == Granted(value=10.0, inconsistency=0.0, esr_case=None)
        assert query.account.total == 0.0
        assert manager.snapshot.hits == 1

    def test_stale_hit_charges_exactly_case1(self):
        manager = make_manager()
        query = manager.begin("query", TransactionBounds(import_limit=100.0))
        writer = manager.begin("update", TransactionBounds(export_limit=1e9))
        manager.write(writer, 1, 16.0)
        manager.commit(writer)
        outcome = manager.read_cached(query, 1)
        # Served the committed snapshot (16), proper for the query's
        # older timestamp is 10 — a Case-1 late read charging 6.
        assert outcome == Granted(
            value=16.0, inconsistency=6.0, esr_case=CASE_LATE_READ
        )
        assert query.account.total == 6.0
        assert manager.snapshot.divergence_charged == 6.0

    def test_update_reads_fall_back(self):
        manager = make_manager()
        update = manager.begin("update", TransactionBounds(export_limit=1e9))
        assert manager.read_cached(update, 1) is None
        assert manager.snapshot.fallbacks == 1

    def test_own_write_falls_back(self):
        manager = make_manager()
        update = manager.begin(
            "update",
            TransactionBounds(import_limit=1e9, export_limit=1e9),
            allow_inconsistent_reads=True,
        )
        manager.write(update, 1, 11.0)
        # The snapshot only holds committed state; a transaction with a
        # staged write must read its own value through the engine.
        assert manager.read_cached(update, 1) is None

    def test_finished_transaction_falls_back(self):
        manager = make_manager()
        query = manager.begin("query", TransactionBounds(import_limit=1e9))
        manager.commit(query)
        assert manager.read_cached(query, 1) is None

    def test_unpublished_object_is_a_miss(self):
        manager = make_manager()
        manager.database.create_object(99, 1.0)  # after bootstrap
        query = manager.begin("query", TransactionBounds(import_limit=1e9))
        assert manager.read_cached(query, 99) is None
        assert manager.snapshot.misses == 1

    def test_pending_delta_guards_but_never_charges(self):
        manager = make_manager()
        writer = manager.begin("update", TransactionBounds(export_limit=1e9))
        manager.write(writer, 1, 14.0)  # staged, uncommitted: delta 4
        tight = manager.begin("query", TransactionBounds(import_limit=3.0))
        assert manager.read_cached(tight, 1) is None  # guarded 4 > til 3
        assert tight.account.total == 0.0
        roomy = manager.begin("query", TransactionBounds(import_limit=4.0))
        outcome = manager.read_cached(roomy, 1)
        # Serves the *committed* value — consistent, so zero charge even
        # though the pending delta was tested against the bounds.
        assert outcome == Granted(value=10.0, inconsistency=0.0, esr_case=None)
        assert roomy.account.total == 0.0

    def test_fallback_leaves_no_partial_charge(self):
        manager = make_manager()
        query = manager.begin("query", TransactionBounds(import_limit=5.0))
        writer = manager.begin("update", TransactionBounds(export_limit=1e9))
        manager.write(writer, 1, 16.0)
        manager.commit(writer)
        assert manager.read_cached(query, 1) is None  # staleness 6 > til 5
        assert query.account.total == 0.0
        assert dict(query.account.level_snapshot())[ROOT_GROUP][0] == 0.0


class TestBoundExactlyAtLimit:
    """Inclusive admission at every level: usage + charge == limit fits."""

    def _stale_setup(self, manager: TransactionManager, **begin_kw):
        query = manager.begin("query", **begin_kw)
        writer = manager.begin("update", TransactionBounds(export_limit=1e9))
        manager.write(writer, 1, 16.0)  # staleness 6 for the older query
        manager.commit(writer)
        return query

    def test_til_exactly_at_limit_admits(self):
        manager = make_manager()
        query = self._stale_setup(
            manager, bounds=TransactionBounds(import_limit=6.0)
        )
        outcome = manager.read_cached(query, 1)
        assert outcome is not None and outcome.inconsistency == 6.0
        assert query.account.total == 6.0  # the TIL is now exhausted

    def test_til_just_under_falls_back(self):
        manager = make_manager()
        query = self._stale_setup(
            manager, bounds=TransactionBounds(import_limit=5.999)
        )
        assert manager.read_cached(query, 1) is None

    def test_oil_exactly_at_limit_admits(self):
        database = grouped_database()
        database.get(1).bounds = ObjectBounds(import_limit=6.0)
        manager = make_manager(database)
        query = self._stale_setup(
            manager, bounds=TransactionBounds(import_limit=1e9)
        )
        assert manager.read_cached(query, 1) is not None

    def test_oil_just_under_falls_back(self):
        database = grouped_database()
        database.get(1).bounds = ObjectBounds(import_limit=5.999)
        manager = make_manager(database)
        query = self._stale_setup(
            manager, bounds=TransactionBounds(import_limit=1e9)
        )
        assert manager.read_cached(query, 1) is None

    def test_per_transaction_oil_override_applies(self):
        database = grouped_database()
        database.get(1).bounds = ObjectBounds(import_limit=0.0)
        manager = make_manager(database)
        query = self._stale_setup(
            manager,
            bounds=TransactionBounds(import_limit=1e9),
            object_limits={1: 6.0},
        )
        assert manager.read_cached(query, 1) is not None

    def test_gil_exactly_at_limit_admits(self):
        manager = make_manager()
        query = self._stale_setup(
            manager,
            bounds=TransactionBounds(import_limit=1e9),
            group_limits={"hot": 6.0},
        )
        assert manager.read_cached(query, 1) is not None
        assert dict(query.account.level_snapshot())["hot"] == (6.0, 6.0)

    def test_gil_just_under_falls_back(self):
        manager = make_manager()
        query = self._stale_setup(
            manager,
            bounds=TransactionBounds(import_limit=1e9),
            group_limits={"hot": 5.999},
        )
        assert manager.read_cached(query, 1) is None
        assert dict(query.account.level_snapshot())["hot"][0] == 0.0


class TestEquivalenceOracle:
    """Property test: every cache-served read is one some legal engine
    execution could also produce.

    Over a randomized workload trace, each hit must (a) return the
    committed snapshot value at serve time, (b) carry exactly the Case-1
    charge for that value at the query's timestamp, and (c) leave every
    level of the bound hierarchy within its limit, with the usage having
    grown by exactly the charge.  Each fallback must leave the ledger
    untouched.
    """

    def test_randomized_trace(self):
        rng = random.Random(20260807)
        database = grouped_database()
        manager = make_manager(database)
        store = manager.snapshot
        object_ids = (1, 2, 3, 4, 5)
        queries = []

        def begin_query():
            til = rng.choice((0.0, 5.0, 25.0, 1e6))
            group_limits = (
                {"hot": rng.choice((0.0, 10.0, 50.0))}
                if rng.random() < 0.5
                else None
            )
            queries.append(
                manager.begin(
                    "query",
                    TransactionBounds(import_limit=til),
                    group_limits=group_limits,
                )
            )

        def writer_step():
            writer = manager.begin(
                "update", TransactionBounds(export_limit=1e9)
            )
            object_id = rng.choice(object_ids)
            manager.write(
                writer, object_id, round(rng.uniform(0.0, 60.0), 1)
            )
            if rng.random() < 0.25:
                manager.abort(writer, "oracle-chaos")
            else:
                manager.commit(writer)

        def finish_query():
            if queries:
                manager.commit(queries.pop(rng.randrange(len(queries))))

        def cached_read():
            if not queries:
                return
            txn = rng.choice(queries)
            object_id = rng.choice(object_ids)
            account = txn.import_account
            before = account.level_snapshot()
            total_before = account.total
            outcome = manager.read_cached(txn, object_id)
            entry = store.entry(object_id)
            if outcome is None:
                # Downgrade, never a rejection: the ledger is untouched.
                assert account.level_snapshot() == before
                assert account.total == total_before
                return
            # (a) the value is the committed snapshot at serve time.
            assert outcome.value == entry.value
            # (b) the charge is exactly the Case-1 staleness of that
            # value at the transaction's own timestamp.
            if txn.timestamp < entry.commit_ts:
                expected = abs(
                    entry.value - entry.proper_value_for(txn.timestamp)
                )
            else:
                expected = 0.0
            assert outcome.inconsistency == expected
            assert (outcome.esr_case == CASE_LATE_READ) == (expected > 0.0)
            assert account.total == total_before + expected
            # (c) every bounded level on the object's path grew by the
            # charge and stays within its limit — no level was
            # overdrawn to serve this; levels off the path are untouched.
            path = set(database.catalog.path(object_id))
            after = account.level_snapshot()
            for level, (usage, limit) in after.items():
                grew = expected if level in path else 0.0
                assert usage == pytest.approx(before[level][0] + grew)
                if level in path:
                    assert usage <= limit

        steps = {
            begin_query: 0.2,
            writer_step: 0.3,
            cached_read: 0.4,
            finish_query: 0.1,
        }
        actions, weights = zip(*steps.items())
        for _ in range(600):
            rng.choices(actions, weights)[0]()
        assert store.hits > 50  # the trace exercised the fast path
        assert store.fallbacks > 10  # ...and its bound guards


class TestSnapshotReadDirect:
    """snapshot_read unit edges not reachable through the manager."""

    def test_store_without_catalog_groups(self):
        database = Database()
        database.create_many((i, float(i)) for i in (1, 2))
        manager = TransactionManager(database, snapshot_cache=True)
        query = manager.begin("query", TransactionBounds(import_limit=0.0))
        outcome = snapshot_read(manager.snapshot, query, 2)
        assert outcome == Granted(value=2.0, inconsistency=0.0, esr_case=None)

    def test_stats_shape(self):
        manager = make_manager()
        stats = manager.snapshot.stats()
        assert set(stats) == {
            "hits",
            "misses",
            "fallbacks",
            "divergence_charged",
        }
