"""Tests for the sharded engine composite.

Three angles:

* **Equivalence** — a deterministic single-threaded operation trace must
  produce bit-identical outcomes, metrics, and committed state whether it
  runs on a bare manager, on ``ShardedEngine(shards=1)``, or on any other
  shard count (single-threaded, shard routing must be unobservable).
* **Cross-shard bound accounting** — TIL and GIL span shards through the
  shared ledger, and exactly-at-limit admission semantics must hold even
  when the charges land on different shards.
* **Concurrency oracle** — under real threads, no transaction may ever
  exceed its bound at any level of the hierarchy, and committed state must
  be traceable to committed writes.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core.bounds import TransactionBounds
from repro.engine.api import (
    PROTOCOLS,
    create_engine,
    protocol_spec,
    validate_protocol_options,
)
from repro.engine.database import Database
from repro.engine.manager import TransactionManager
from repro.engine.mvto import MVTOManager
from repro.engine.results import Granted, MustWait, Rejected
from repro.engine.sharded import (
    _SELF_FIRE_BACKOFF_CAP,
    _SharedWaitRegistry,
    ShardedEngine,
)
from repro.engine.transactions import TransactionStatus
from repro.engine.twopl import TwoPhaseManager
from repro.errors import SpecificationError


def _database(n_objects: int = 12, value: float = 1_000.0) -> Database:
    db = Database()
    for index in range(n_objects):
        db.create_object(index, value=value)
    return db


# The shard composites come in two flavours — threads and worker
# processes — behind the same Engine seam; everything in this module
# that drives a composite runs against both.  On hosts without fork the
# "processes" flavour transparently degrades to the thread composite
# (so the parameterisation never skips, it just runs threads twice).
@pytest.fixture(params=[False, "force"], ids=["threads", "processes"])
def proc_mode(request):
    return request.param


@pytest.fixture
def make_engine():
    created: list = []

    def make(database, protocol, **kwargs):
        engine = create_engine(database, protocol, **kwargs)
        created.append(engine)
        return engine

    yield make
    for engine in created:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


# ---------------------------------------------------------------------------
# Deterministic trace equivalence
# ---------------------------------------------------------------------------


def _make_trace(seed: int, n_ops: int = 400, n_objects: int = 12, n_slots: int = 4):
    """A reproducible mixed workload over a handful of transaction slots."""
    rng = random.Random(seed)
    ops = []
    live: dict[int, str] = {}
    for _ in range(n_ops):
        slot = rng.randrange(n_slots)
        if slot not in live:
            kind = rng.choice(["query", "update"])
            limit = rng.choice([0.0, 25.0, 400.0, 1e9])
            ops.append(("begin", slot, kind, limit))
            live[slot] = kind
        else:
            roll = rng.random()
            if roll < 0.55:
                object_id = rng.randrange(n_objects)
                if live[slot] == "update" and rng.random() < 0.5:
                    value = round(rng.uniform(0.0, 2_000.0), 1)
                    ops.append(("write", slot, object_id, value))
                else:
                    ops.append(("read", slot, object_id))
            elif roll < 0.8:
                ops.append(("commit", slot))
                del live[slot]
            else:
                ops.append(("abort", slot))
                del live[slot]
    for slot in live:
        ops.append(("commit", slot))
    return ops


def _drive(manager, trace):
    """Run a trace single-threaded; return (outcome log, metrics, state)."""
    log = []
    txns = {}
    for step in trace:
        op = step[0]
        if op == "begin":
            _, slot, kind, limit = step
            if kind == "query":
                bounds = TransactionBounds(import_limit=limit)
            else:
                bounds = TransactionBounds(export_limit=limit)
            txn = manager.begin(kind, bounds)
            txns[slot] = txn
            log.append(("begin", kind, txn.transaction_id))
        elif op in ("read", "write"):
            txn = txns[step[1]]
            if not txn.is_active:
                log.append(("dead", step[1]))
                continue
            if op == "read":
                outcome = manager.read(txn, step[2])
            else:
                outcome = manager.write(txn, step[2], step[3])
            log.append(
                (
                    op,
                    step[2],
                    type(outcome).__name__,
                    getattr(outcome, "value", None),
                    getattr(outcome, "inconsistency", None),
                    getattr(outcome, "esr_case", None),
                    getattr(outcome, "reason", None),
                )
            )
            if isinstance(outcome, MustWait):
                # A single-threaded driver cannot wait on itself.
                manager.abort(txn, "trace-wait")
        elif op == "commit":
            txn = txns.pop(step[1])
            if txn.is_active:
                manager.commit(txn)
                log.append(("commit", txn.transaction_id, txn.status))
            else:
                log.append(("finished", txn.transaction_id, txn.status))
        else:
            txn = txns.pop(step[1])
            if txn.is_active:
                manager.abort(txn)
                log.append(("abort", txn.transaction_id))
            else:
                log.append(("finished", txn.transaction_id, txn.status))
    state = {
        object_id: manager.database.get(object_id).committed_value
        for object_id in sorted(manager.database.object_ids())
    }
    return log, manager.metrics.snapshot(), state


BARE_TYPES = {
    "esr": TransactionManager,
    "sr": TransactionManager,
    "2pl": TwoPhaseManager,
    "2pl-sr": TwoPhaseManager,
    "mvto": MVTOManager,
}


class TestTraceEquivalence:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_one_shard_matches_bare_manager(self, protocol):
        trace = _make_trace(7)
        bare = create_engine(_database(), protocol)
        assert isinstance(bare, BARE_TYPES[protocol])
        # ``create_engine`` only builds the composite above one shard, so
        # construct the degenerate single-shard composite directly.
        sharded = ShardedEngine(_database(), protocol, shards=1)
        assert _drive(bare, trace) == _drive(sharded, trace)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("shards", [2, 5])
    def test_shard_count_unobservable_single_threaded(
        self, protocol, shards, proc_mode, make_engine
    ):
        trace = _make_trace(11)
        baseline = _drive(create_engine(_database(), protocol), trace)
        routed = _drive(
            make_engine(
                _database(), protocol, shards=shards, processes=proc_mode
            ),
            trace,
        )
        assert baseline == routed

    def test_trace_exercises_every_outcome_kind(self):
        # Guard against the equivalence tests silently degenerating.
        log, _, _ = _drive(create_engine(_database(), "esr"), _make_trace(7))
        names = {entry[2] for entry in log if entry[0] in ("read", "write")}
        assert {"Granted", "Rejected"} <= names


# ---------------------------------------------------------------------------
# Cross-shard hierarchical bounds, exactly-at-limit semantics
# ---------------------------------------------------------------------------


class TestCrossShardBounds:
    """Objects 0 and 1 land on different shards (``object_id % 2``); a
    writer that began *after* the query commits divergence 50 to object 0
    and 30 to object 1, making the query's reads late reads of committed
    data (ESR case 1) whose import charges span shards.  Runs against
    both composites: in process mode the charges land in different
    worker *processes* and must still share one exact ledger."""

    def _commit_late_writes(self, engine):
        writer = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.write(writer, 0, 150.0), Granted)  # d = 50
        assert isinstance(engine.write(writer, 1, 130.0), Granted)  # d = 30
        engine.commit(writer)

    def test_til_spans_shards_exactly_at_limit(self, proc_mode, make_engine):
        engine = make_engine(
            _database(4, value=100.0), "esr", shards=2, processes=proc_mode
        )
        # 50 + 30 == 80: exactly at the limit must be admitted.
        query = engine.begin("query", TransactionBounds(import_limit=80.0))
        self._commit_late_writes(engine)
        first = engine.read(query, 0)
        assert isinstance(first, Granted) and first.inconsistency == 50.0
        assert first.esr_case == "late-read-committed"
        second = engine.read(query, 1)
        assert isinstance(second, Granted) and second.inconsistency == 30.0
        engine.commit(query)
        assert query.imported == 80.0

    def test_til_spans_shards_just_over_limit(self, proc_mode, make_engine):
        engine = make_engine(
            _database(4, value=100.0), "esr", shards=2, processes=proc_mode
        )
        query = engine.begin("query", TransactionBounds(import_limit=79.0))
        self._commit_late_writes(engine)
        assert isinstance(engine.read(query, 0), Granted)
        second = engine.read(query, 1)
        assert isinstance(second, Rejected)
        assert second.reason == "bound-violation"
        assert not query.is_active

    def test_oil_is_shard_local(self, proc_mode, make_engine):
        engine = make_engine(
            _database(4, value=100.0), "esr", shards=2, processes=proc_mode
        )
        # Per-object caps: exactly 50 admits object 0's divergence, 29
        # rejects object 1's 30; the TIL stays unbounded throughout.
        query = engine.begin(
            "query",
            TransactionBounds(import_limit=1e9),
            object_limits={0: 50.0, 1: 29.0},
        )
        self._commit_late_writes(engine)
        assert isinstance(engine.read(query, 0), Granted)
        rejected = engine.read(query, 1)
        assert isinstance(rejected, Rejected)
        assert rejected.reason == "bound-violation"

    def test_gil_spans_shards(self, proc_mode, make_engine):
        def build():
            db = Database()
            db.catalog.add_group("hot")
            for index in range(4):
                db.create_object(
                    index, value=100.0, group="hot" if index < 2 else None
                )
            return make_engine(db, "esr", shards=2, processes=proc_mode)

        # Group budget of exactly 80 admits both reads (objects 0 and 1
        # live on different shards but share the group ledger) ...
        engine = build()
        roomy = engine.begin(
            "query",
            TransactionBounds(import_limit=1e9),
            group_limits={"hot": 80.0},
        )
        self._commit_late_writes(engine)
        assert isinstance(engine.read(roomy, 0), Granted)
        assert isinstance(engine.read(roomy, 1), Granted)
        engine.commit(roomy)
        # ... and a budget of 79 rejects the second read.
        engine = build()
        tight = engine.begin(
            "query",
            TransactionBounds(import_limit=1e9),
            group_limits={"hot": 79.0},
        )
        self._commit_late_writes(engine)
        assert isinstance(engine.read(tight, 0), Granted)
        rejected = engine.read(tight, 1)
        assert isinstance(rejected, Rejected)
        assert rejected.reason == "bound-violation"

    def test_tel_spans_shards_for_late_writes(self, proc_mode, make_engine):
        engine = make_engine(
            _database(4, value=100.0), "esr", shards=2, processes=proc_mode
        )
        # A query with a pinned-future timestamp reads objects on both
        # shards, so later writes are ESR case 3 (late write past a query
        # read) and charge the writer's export account across shards.
        from repro.engine.timestamps import Timestamp

        query = engine.begin(
            "query",
            TransactionBounds(import_limit=1e9),
            timestamp=Timestamp(float("inf"), site=9),
        )
        assert isinstance(engine.read(query, 0), Granted)
        assert isinstance(engine.read(query, 1), Granted)
        writer = engine.begin("update", TransactionBounds(export_limit=80.0))
        first = engine.write(writer, 0, 150.0)  # exports 50 to the query
        assert isinstance(first, Granted) and first.esr_case == "late-write"
        second = engine.write(writer, 1, 130.0)  # 50 + 30 == 80: admitted
        assert isinstance(second, Granted)
        engine.commit(writer)
        assert writer.exported == 80.0
        over = engine.begin("update", TransactionBounds(export_limit=79.0))
        assert isinstance(engine.write(over, 0, 150.0), Granted)
        rejected = engine.write(over, 1, 130.0)
        assert isinstance(rejected, Rejected)
        assert rejected.reason == "bound-violation"
        engine.abort(query)


# ---------------------------------------------------------------------------
# Threaded oracle: the hierarchy holds under real concurrency
# ---------------------------------------------------------------------------


class TestThreadedOracle:
    N_OBJECTS = 16
    N_THREADS = 6
    TXNS_PER_THREAD = 40

    def _worker(self, engine, seed, finished, errors):
        rng = random.Random(seed)
        try:
            for _ in range(self.TXNS_PER_THREAD):
                limit = rng.choice([0.0, 50.0, 200.0, 1e9])
                if rng.random() < 0.5:
                    txn = engine.begin(
                        "query", TransactionBounds(import_limit=limit)
                    )
                else:
                    txn = engine.begin(
                        "update", TransactionBounds(export_limit=limit)
                    )
                committed_writes = []
                for _ in range(rng.randrange(1, 6)):
                    object_id = rng.randrange(self.N_OBJECTS)
                    if txn.is_update and rng.random() < 0.5:
                        value = rng.uniform(0.0, 2_000.0)
                        outcome = engine.write(txn, object_id, value)
                        if isinstance(outcome, Granted):
                            committed_writes.append((object_id, value))
                    else:
                        outcome = engine.read(txn, object_id)
                    if isinstance(outcome, MustWait):
                        engine.abort(txn, "oracle-wait")
                        break
                    if isinstance(outcome, Rejected):
                        break
                if txn.is_active:
                    if rng.random() < 0.85:
                        engine.commit(txn)
                    else:
                        engine.abort(txn)
                if txn.status is not TransactionStatus.COMMITTED:
                    committed_writes = []
                finished.append((limit, txn, committed_writes))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def test_bounds_hold_under_threads(self, proc_mode, make_engine):
        engine = make_engine(
            _database(self.N_OBJECTS, value=1_000.0),
            "esr",
            shards=4,
            processes=proc_mode,
        )
        finished: list = []
        errors: list = []
        threads = [
            threading.Thread(
                target=self._worker, args=(engine, 100 + i, finished, errors)
            )
            for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(finished) == self.N_THREADS * self.TXNS_PER_THREAD
        assert engine.active_transactions() == ()
        slack = 1e-9
        writes_by_object: dict[int, set[float]] = {}
        for limit, txn, committed_writes in finished:
            assert txn.status is not TransactionStatus.ACTIVE
            if txn.is_query:
                assert txn.imported <= limit + slack
            else:
                assert txn.exported <= limit + slack
            for object_id, value in committed_writes:
                writes_by_object.setdefault(object_id, set()).add(value)
        # Committed state is traceable: every final value is either the
        # initial value or something a committed transaction wrote.
        for object_id in range(self.N_OBJECTS):
            final = engine.database.get(object_id).committed_value
            candidates = writes_by_object.get(object_id, set()) | {1_000.0}
            assert final in candidates
        snapshot = engine.metrics.snapshot()
        assert snapshot.commits + snapshot.aborts == len(finished)


# ---------------------------------------------------------------------------
# Self-fire backoff: no busy-spin when the blocker commits late
# ---------------------------------------------------------------------------


class TestSelfFireBackoff:
    """``_SharedWaitRegistry.subscribe`` fires the callback immediately
    when the blocker is no longer active.  When the blocker is mid-
    completion (popped from the active map but still finishing its last
    shard), a waiter that retries on every self-fire used to spin through
    subscribe → retry → MustWait → subscribe as fast as the interpreter
    allowed.  Repeated self-fires against a *completing* blocker now
    sleep a capped exponential backoff first."""

    def _registry(self, active=(), completing=()):
        return _SharedWaitRegistry(
            lambda txn: txn in active, lambda txn: txn in completing
        )

    def test_self_fire_on_completed_blocker_is_immediate(self):
        registry = self._registry()  # blocker neither active nor completing
        fired = []
        started = time.perf_counter()
        for _ in range(50):
            registry.subscribe(9, lambda: fired.append(1), waiter_transaction=1)
        assert len(fired) == 50
        # No completing blocker, no backoff: 50 subscribes are instant.
        assert time.perf_counter() - started < _SELF_FIRE_BACKOFF_CAP * 10

    def test_repeated_self_fires_against_completing_blocker_back_off(self):
        registry = self._registry(completing={9})
        fired = []
        started = time.perf_counter()
        for _ in range(10):
            registry.subscribe(9, lambda: fired.append(1), waiter_transaction=1)
        elapsed = time.perf_counter() - started
        assert len(fired) == 10  # the callback always still fires
        # Doubling from 0.1 ms reaches the 5 ms cap within the loop, so
        # ten retries must have slept a measurable total (~28 ms) — the
        # unbacked-off loop ran in microseconds.
        assert elapsed >= _SELF_FIRE_BACKOFF_CAP
        assert registry._self_fires[(1, 9)] == 10

    def test_fire_resets_the_backoff_counter(self):
        registry = self._registry(completing={9})
        registry.subscribe(9, lambda: None, waiter_transaction=1)
        assert registry._self_fires[(1, 9)] == 1
        registry.fire(9)
        assert (1, 9) not in registry._self_fires

    def test_normal_park_resets_the_backoff_counter(self):
        active = {9}
        completing = set()
        registry = _SharedWaitRegistry(
            lambda txn: txn in active, lambda txn: txn in completing
        )
        completing.add(9)
        active.discard(9)
        registry.subscribe(9, lambda: None, waiter_transaction=1)
        assert registry._self_fires[(1, 9)] == 1
        # The blocker becomes active again (a fresh transaction id reusing
        # the slot is equivalent); a real park clears the stale counter.
        active.add(9)
        completing.discard(9)
        registry.subscribe(9, lambda: None, waiter_transaction=1)
        assert (1, 9) not in registry._self_fires

    def test_no_spin_when_blocker_commits_late(self, proc_mode, make_engine):
        """End-to-end: a server-style wait/retry loop against a writer
        whose commit stalls on another shard retries a bounded number of
        times instead of busy-spinning for the whole completion window."""
        engine = make_engine(
            _database(4, value=100.0), "esr", shards=2, processes=proc_mode
        )
        writer = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.write(writer, 0, 150.0), Granted)
        assert isinstance(engine.write(writer, 1, 130.0), Granted)

        # Make the writer's completion stall *inside* the completing
        # window: shard 0 finishes slowly while shard 1 (where the
        # waiter's object lives) stays pending behind it, so retries see
        # a blocker that is gone from the active map but not yet done.
        entered = threading.Event()
        if isinstance(engine, ShardedEngine):
            inner = engine._engines[0]
            original_complete = inner.complete

            def slow_complete(txn, status, reason=None):
                if txn.transaction_id == writer.transaction_id:
                    entered.set()
                    time.sleep(0.15)
                return original_complete(txn, status, reason)

            inner.complete = slow_complete
        else:
            channel = engine._channels[0]
            original_request = channel.request

            def slow_request(frame):
                if (
                    frame[0] == "complete"
                    and frame[1] == writer.transaction_id
                ):
                    entered.set()
                    time.sleep(0.15)
                return original_request(frame)

            channel.request = slow_request

        query = engine.begin("query", TransactionBounds(import_limit=0.0))
        committer = threading.Thread(target=engine.commit, args=(writer,))
        committer.start()
        try:
            assert entered.wait(2.0)
            retries = 0
            while True:
                outcome = engine.read(query, 1)
                if isinstance(outcome, Granted):
                    break
                assert isinstance(outcome, MustWait)
                retries += 1
                assert retries < 500, "waiter is busy-spinning"
                event = engine.waits.wait_event(
                    outcome.blocking_transaction,
                    waiter_transaction=query.transaction_id,
                )
                event.wait(1.0)
            assert outcome.value == 130.0
        finally:
            committer.join()
        engine.commit(query)
        # The 150 ms completion stall admits at most ~35 capped-backoff
        # retries; the pre-backoff loop spun thousands of times.
        assert retries < 100


# ---------------------------------------------------------------------------
# Registry and validation agreement (satellites 1 and 2)
# ---------------------------------------------------------------------------


class TestRegistryAgreement:
    def test_registry_contents(self):
        assert PROTOCOLS == ("esr", "sr", "2pl", "2pl-sr", "mvto")
        for name in PROTOCOLS:
            spec = protocol_spec(name)
            assert spec.name == name
            engine = create_engine(_database(2), name)
            assert isinstance(engine, BARE_TYPES[name])

    def test_unknown_protocol_rejected_everywhere(self):
        with pytest.raises(SpecificationError):
            protocol_spec("serializable")
        with pytest.raises(SpecificationError):
            create_engine(_database(2), "serializable")

    def test_snapshot_cache_requires_esr(self):
        validate_protocol_options("esr", snapshot_cache=True)
        for name in ("sr", "2pl", "2pl-sr", "mvto"):
            with pytest.raises(SpecificationError):
                validate_protocol_options(name, snapshot_cache=True)
            with pytest.raises(SpecificationError):
                create_engine(_database(2), name, snapshot_cache=True)

    def test_shard_count_validated(self):
        with pytest.raises(SpecificationError):
            validate_protocol_options("esr", shards=0)
        with pytest.raises(SpecificationError):
            create_engine(_database(2), "esr", shards=0)

    def test_wait_policy_validated(self):
        validate_protocol_options("esr", wait_policy="abort")
        with pytest.raises(SpecificationError):
            validate_protocol_options("2pl", wait_policy="abort")
        with pytest.raises(SpecificationError):
            validate_protocol_options("esr", wait_policy="spin")
