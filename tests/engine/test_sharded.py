"""Tests for the sharded engine composite.

Three angles:

* **Equivalence** — a deterministic single-threaded operation trace must
  produce bit-identical outcomes, metrics, and committed state whether it
  runs on a bare manager, on ``ShardedEngine(shards=1)``, or on any other
  shard count (single-threaded, shard routing must be unobservable).
* **Cross-shard bound accounting** — TIL and GIL span shards through the
  shared ledger, and exactly-at-limit admission semantics must hold even
  when the charges land on different shards.
* **Concurrency oracle** — under real threads, no transaction may ever
  exceed its bound at any level of the hierarchy, and committed state must
  be traceable to committed writes.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.bounds import TransactionBounds
from repro.engine.api import (
    PROTOCOLS,
    create_engine,
    protocol_spec,
    validate_protocol_options,
)
from repro.engine.database import Database
from repro.engine.manager import TransactionManager
from repro.engine.mvto import MVTOManager
from repro.engine.results import Granted, MustWait, Rejected
from repro.engine.sharded import ShardedEngine
from repro.engine.transactions import TransactionStatus
from repro.engine.twopl import TwoPhaseManager
from repro.errors import SpecificationError


def _database(n_objects: int = 12, value: float = 1_000.0) -> Database:
    db = Database()
    for index in range(n_objects):
        db.create_object(index, value=value)
    return db


# ---------------------------------------------------------------------------
# Deterministic trace equivalence
# ---------------------------------------------------------------------------


def _make_trace(seed: int, n_ops: int = 400, n_objects: int = 12, n_slots: int = 4):
    """A reproducible mixed workload over a handful of transaction slots."""
    rng = random.Random(seed)
    ops = []
    live: dict[int, str] = {}
    for _ in range(n_ops):
        slot = rng.randrange(n_slots)
        if slot not in live:
            kind = rng.choice(["query", "update"])
            limit = rng.choice([0.0, 25.0, 400.0, 1e9])
            ops.append(("begin", slot, kind, limit))
            live[slot] = kind
        else:
            roll = rng.random()
            if roll < 0.55:
                object_id = rng.randrange(n_objects)
                if live[slot] == "update" and rng.random() < 0.5:
                    value = round(rng.uniform(0.0, 2_000.0), 1)
                    ops.append(("write", slot, object_id, value))
                else:
                    ops.append(("read", slot, object_id))
            elif roll < 0.8:
                ops.append(("commit", slot))
                del live[slot]
            else:
                ops.append(("abort", slot))
                del live[slot]
    for slot in live:
        ops.append(("commit", slot))
    return ops


def _drive(manager, trace):
    """Run a trace single-threaded; return (outcome log, metrics, state)."""
    log = []
    txns = {}
    for step in trace:
        op = step[0]
        if op == "begin":
            _, slot, kind, limit = step
            if kind == "query":
                bounds = TransactionBounds(import_limit=limit)
            else:
                bounds = TransactionBounds(export_limit=limit)
            txn = manager.begin(kind, bounds)
            txns[slot] = txn
            log.append(("begin", kind, txn.transaction_id))
        elif op in ("read", "write"):
            txn = txns[step[1]]
            if not txn.is_active:
                log.append(("dead", step[1]))
                continue
            if op == "read":
                outcome = manager.read(txn, step[2])
            else:
                outcome = manager.write(txn, step[2], step[3])
            log.append(
                (
                    op,
                    step[2],
                    type(outcome).__name__,
                    getattr(outcome, "value", None),
                    getattr(outcome, "inconsistency", None),
                    getattr(outcome, "esr_case", None),
                    getattr(outcome, "reason", None),
                )
            )
            if isinstance(outcome, MustWait):
                # A single-threaded driver cannot wait on itself.
                manager.abort(txn, "trace-wait")
        elif op == "commit":
            txn = txns.pop(step[1])
            if txn.is_active:
                manager.commit(txn)
                log.append(("commit", txn.transaction_id, txn.status))
            else:
                log.append(("finished", txn.transaction_id, txn.status))
        else:
            txn = txns.pop(step[1])
            if txn.is_active:
                manager.abort(txn)
                log.append(("abort", txn.transaction_id))
            else:
                log.append(("finished", txn.transaction_id, txn.status))
    state = {
        object_id: manager.database.get(object_id).committed_value
        for object_id in sorted(manager.database.object_ids())
    }
    return log, manager.metrics.snapshot(), state


BARE_TYPES = {
    "esr": TransactionManager,
    "sr": TransactionManager,
    "2pl": TwoPhaseManager,
    "2pl-sr": TwoPhaseManager,
    "mvto": MVTOManager,
}


class TestTraceEquivalence:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_one_shard_matches_bare_manager(self, protocol):
        trace = _make_trace(7)
        bare = create_engine(_database(), protocol)
        assert isinstance(bare, BARE_TYPES[protocol])
        # ``create_engine`` only builds the composite above one shard, so
        # construct the degenerate single-shard composite directly.
        sharded = ShardedEngine(_database(), protocol, shards=1)
        assert _drive(bare, trace) == _drive(sharded, trace)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("shards", [2, 5])
    def test_shard_count_unobservable_single_threaded(self, protocol, shards):
        trace = _make_trace(11)
        baseline = _drive(create_engine(_database(), protocol), trace)
        routed = _drive(create_engine(_database(), protocol, shards=shards), trace)
        assert baseline == routed

    def test_trace_exercises_every_outcome_kind(self):
        # Guard against the equivalence tests silently degenerating.
        log, _, _ = _drive(create_engine(_database(), "esr"), _make_trace(7))
        names = {entry[2] for entry in log if entry[0] in ("read", "write")}
        assert {"Granted", "Rejected"} <= names


# ---------------------------------------------------------------------------
# Cross-shard hierarchical bounds, exactly-at-limit semantics
# ---------------------------------------------------------------------------


class TestCrossShardBounds:
    """Objects 0 and 1 land on different shards (``object_id % 2``); a
    writer that began *after* the query commits divergence 50 to object 0
    and 30 to object 1, making the query's reads late reads of committed
    data (ESR case 1) whose import charges span shards."""

    def _commit_late_writes(self, engine):
        writer = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.write(writer, 0, 150.0), Granted)  # d = 50
        assert isinstance(engine.write(writer, 1, 130.0), Granted)  # d = 30
        engine.commit(writer)

    def test_til_spans_shards_exactly_at_limit(self):
        engine = create_engine(_database(4, value=100.0), "esr", shards=2)
        # 50 + 30 == 80: exactly at the limit must be admitted.
        query = engine.begin("query", TransactionBounds(import_limit=80.0))
        self._commit_late_writes(engine)
        first = engine.read(query, 0)
        assert isinstance(first, Granted) and first.inconsistency == 50.0
        assert first.esr_case == "late-read-committed"
        second = engine.read(query, 1)
        assert isinstance(second, Granted) and second.inconsistency == 30.0
        engine.commit(query)
        assert query.imported == 80.0

    def test_til_spans_shards_just_over_limit(self):
        engine = create_engine(_database(4, value=100.0), "esr", shards=2)
        query = engine.begin("query", TransactionBounds(import_limit=79.0))
        self._commit_late_writes(engine)
        assert isinstance(engine.read(query, 0), Granted)
        second = engine.read(query, 1)
        assert isinstance(second, Rejected)
        assert second.reason == "bound-violation"
        assert not query.is_active

    def test_oil_is_shard_local(self):
        engine = create_engine(_database(4, value=100.0), "esr", shards=2)
        # Per-object caps: exactly 50 admits object 0's divergence, 29
        # rejects object 1's 30; the TIL stays unbounded throughout.
        query = engine.begin(
            "query",
            TransactionBounds(import_limit=1e9),
            object_limits={0: 50.0, 1: 29.0},
        )
        self._commit_late_writes(engine)
        assert isinstance(engine.read(query, 0), Granted)
        rejected = engine.read(query, 1)
        assert isinstance(rejected, Rejected)
        assert rejected.reason == "bound-violation"

    def test_gil_spans_shards(self):
        def build():
            db = Database()
            db.catalog.add_group("hot")
            for index in range(4):
                db.create_object(
                    index, value=100.0, group="hot" if index < 2 else None
                )
            return create_engine(db, "esr", shards=2)

        # Group budget of exactly 80 admits both reads (objects 0 and 1
        # live on different shards but share the group ledger) ...
        engine = build()
        roomy = engine.begin(
            "query",
            TransactionBounds(import_limit=1e9),
            group_limits={"hot": 80.0},
        )
        self._commit_late_writes(engine)
        assert isinstance(engine.read(roomy, 0), Granted)
        assert isinstance(engine.read(roomy, 1), Granted)
        engine.commit(roomy)
        # ... and a budget of 79 rejects the second read.
        engine = build()
        tight = engine.begin(
            "query",
            TransactionBounds(import_limit=1e9),
            group_limits={"hot": 79.0},
        )
        self._commit_late_writes(engine)
        assert isinstance(engine.read(tight, 0), Granted)
        rejected = engine.read(tight, 1)
        assert isinstance(rejected, Rejected)
        assert rejected.reason == "bound-violation"

    def test_tel_spans_shards_for_late_writes(self):
        engine = create_engine(_database(4, value=100.0), "esr", shards=2)
        # A query with a pinned-future timestamp reads objects on both
        # shards, so later writes are ESR case 3 (late write past a query
        # read) and charge the writer's export account across shards.
        from repro.engine.timestamps import Timestamp

        query = engine.begin(
            "query",
            TransactionBounds(import_limit=1e9),
            timestamp=Timestamp(float("inf"), site=9),
        )
        assert isinstance(engine.read(query, 0), Granted)
        assert isinstance(engine.read(query, 1), Granted)
        writer = engine.begin("update", TransactionBounds(export_limit=80.0))
        first = engine.write(writer, 0, 150.0)  # exports 50 to the query
        assert isinstance(first, Granted) and first.esr_case == "late-write"
        second = engine.write(writer, 1, 130.0)  # 50 + 30 == 80: admitted
        assert isinstance(second, Granted)
        engine.commit(writer)
        assert writer.exported == 80.0
        over = engine.begin("update", TransactionBounds(export_limit=79.0))
        assert isinstance(engine.write(over, 0, 150.0), Granted)
        rejected = engine.write(over, 1, 130.0)
        assert isinstance(rejected, Rejected)
        assert rejected.reason == "bound-violation"
        engine.abort(query)


# ---------------------------------------------------------------------------
# Threaded oracle: the hierarchy holds under real concurrency
# ---------------------------------------------------------------------------


class TestThreadedOracle:
    N_OBJECTS = 16
    N_THREADS = 6
    TXNS_PER_THREAD = 40

    def _worker(self, engine, seed, finished, errors):
        rng = random.Random(seed)
        try:
            for _ in range(self.TXNS_PER_THREAD):
                limit = rng.choice([0.0, 50.0, 200.0, 1e9])
                if rng.random() < 0.5:
                    txn = engine.begin(
                        "query", TransactionBounds(import_limit=limit)
                    )
                else:
                    txn = engine.begin(
                        "update", TransactionBounds(export_limit=limit)
                    )
                committed_writes = []
                for _ in range(rng.randrange(1, 6)):
                    object_id = rng.randrange(self.N_OBJECTS)
                    if txn.is_update and rng.random() < 0.5:
                        value = rng.uniform(0.0, 2_000.0)
                        outcome = engine.write(txn, object_id, value)
                        if isinstance(outcome, Granted):
                            committed_writes.append((object_id, value))
                    else:
                        outcome = engine.read(txn, object_id)
                    if isinstance(outcome, MustWait):
                        engine.abort(txn, "oracle-wait")
                        break
                    if isinstance(outcome, Rejected):
                        break
                if txn.is_active:
                    if rng.random() < 0.85:
                        engine.commit(txn)
                    else:
                        engine.abort(txn)
                if txn.status is not TransactionStatus.COMMITTED:
                    committed_writes = []
                finished.append((limit, txn, committed_writes))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def test_bounds_hold_under_threads(self):
        engine = create_engine(
            _database(self.N_OBJECTS, value=1_000.0), "esr", shards=4
        )
        finished: list = []
        errors: list = []
        threads = [
            threading.Thread(
                target=self._worker, args=(engine, 100 + i, finished, errors)
            )
            for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(finished) == self.N_THREADS * self.TXNS_PER_THREAD
        assert engine.active_transactions() == ()
        slack = 1e-9
        writes_by_object: dict[int, set[float]] = {}
        for limit, txn, committed_writes in finished:
            assert txn.status is not TransactionStatus.ACTIVE
            if txn.is_query:
                assert txn.imported <= limit + slack
            else:
                assert txn.exported <= limit + slack
            for object_id, value in committed_writes:
                writes_by_object.setdefault(object_id, set()).add(value)
        # Committed state is traceable: every final value is either the
        # initial value or something a committed transaction wrote.
        for object_id in range(self.N_OBJECTS):
            final = engine.database.get(object_id).committed_value
            candidates = writes_by_object.get(object_id, set()) | {1_000.0}
            assert final in candidates
        snapshot = engine.metrics.snapshot()
        assert snapshot.commits + snapshot.aborts == len(finished)


# ---------------------------------------------------------------------------
# Registry and validation agreement (satellites 1 and 2)
# ---------------------------------------------------------------------------


class TestRegistryAgreement:
    def test_registry_contents(self):
        assert PROTOCOLS == ("esr", "sr", "2pl", "2pl-sr", "mvto")
        for name in PROTOCOLS:
            spec = protocol_spec(name)
            assert spec.name == name
            engine = create_engine(_database(2), name)
            assert isinstance(engine, BARE_TYPES[name])

    def test_unknown_protocol_rejected_everywhere(self):
        with pytest.raises(SpecificationError):
            protocol_spec("serializable")
        with pytest.raises(SpecificationError):
            create_engine(_database(2), "serializable")

    def test_snapshot_cache_requires_esr(self):
        validate_protocol_options("esr", snapshot_cache=True)
        for name in ("sr", "2pl", "2pl-sr", "mvto"):
            with pytest.raises(SpecificationError):
                validate_protocol_options(name, snapshot_cache=True)
            with pytest.raises(SpecificationError):
                create_engine(_database(2), name, snapshot_cache=True)

    def test_shard_count_validated(self):
        with pytest.raises(SpecificationError):
            validate_protocol_options("esr", shards=0)
        with pytest.raises(SpecificationError):
            create_engine(_database(2), "esr", shards=0)

    def test_wait_policy_validated(self):
        validate_protocol_options("esr", wait_policy="abort")
        with pytest.raises(SpecificationError):
            validate_protocol_options("2pl", wait_policy="abort")
        with pytest.raises(SpecificationError):
            validate_protocol_options("esr", wait_policy="spin")
