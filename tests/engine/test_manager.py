"""Transaction-manager lifecycles: effects, recovery, metrics."""

from __future__ import annotations

import pytest

from repro.core.bounds import TransactionBounds
from repro.engine.manager import TransactionManager
from repro.engine.results import Granted, MustWait, Rejected
from repro.engine.transactions import TransactionStatus
from repro.errors import InvalidOperation, SpecificationError, UnknownObjectError


class TestLifecycle:
    def test_read_write_commit(self, manager):
        txn = manager.begin("update", TransactionBounds(0, 0))
        read = manager.read(txn, 3)
        assert read == Granted(value=3_000.0)
        assert isinstance(manager.write(txn, 3, 3_500.0), Granted)
        manager.commit(txn)
        assert txn.status is TransactionStatus.COMMITTED
        assert manager.database.get(3).committed_value == 3_500.0

    def test_abort_restores_values(self, manager):
        txn = manager.begin("update")
        manager.write(txn, 3, 9_999.0)
        assert manager.database.get(3).present_value == 9_999.0
        manager.abort(txn)
        assert manager.database.get(3).present_value == 3_000.0
        assert txn.status is TransactionStatus.ABORTED

    def test_query_cannot_write(self, manager):
        query = manager.begin("query")
        with pytest.raises(InvalidOperation):
            manager.write(query, 3, 1.0)

    def test_operations_on_finished_transaction_rejected(self, manager):
        txn = manager.begin("update")
        manager.commit(txn)
        with pytest.raises(InvalidOperation):
            manager.read(txn, 3)

    def test_abort_is_idempotent_after_rejection(self, manager):
        # A rejection auto-aborts; a client abort afterwards is a no-op.
        writer = manager.begin("update")
        manager.write(writer, 3, 1.0)
        manager.commit(writer)
        late = manager.begin("update")
        object.__setattr__(late, "timestamp", writer.timestamp._replace(seq=0))
        outcome = manager.write(late, 3, 2.0)
        assert isinstance(outcome, Rejected)
        assert late.status is TransactionStatus.ABORTED
        manager.abort(late)  # no error
        assert manager.metrics.aborts == 1

    def test_cannot_abort_committed(self, manager):
        txn = manager.begin("update")
        manager.commit(txn)
        with pytest.raises(InvalidOperation):
            manager.abort(txn)

    def test_unknown_object(self, manager):
        txn = manager.begin("query")
        with pytest.raises(UnknownObjectError):
            manager.read(txn, 404)

    def test_unknown_protocol_rejected(self, small_db):
        with pytest.raises(SpecificationError):
            TransactionManager(small_db, protocol="mvcc")

    def test_begin_accepts_epsilon_level(self, manager):
        from repro.core.bounds import HIGH_EPSILON

        query = manager.begin("query", HIGH_EPSILON)
        assert query.bounds.import_limit == 100_000.0


class TestConcurrentBehaviour:
    def test_query_imports_from_concurrent_update(self, manager):
        query = manager.begin("query", TransactionBounds(import_limit=1_000.0))
        update = manager.begin("update")
        manager.write(update, 5, 5_200.0)  # uncommitted
        outcome = manager.read(query, 5)
        assert isinstance(outcome, Granted)
        assert outcome.value == 5_200.0
        assert outcome.inconsistency == 200.0
        assert query.imported == 200.0
        assert manager.metrics.inconsistent_operations == 1

    def test_sr_protocol_waits_instead(self, sr_manager):
        update = sr_manager.begin("update")
        sr_manager.write(update, 5, 5_200.0)
        query = sr_manager.begin("query")  # younger than the writer
        outcome = sr_manager.read(query, 5)
        assert outcome == MustWait(update.transaction_id)
        assert sr_manager.metrics.waits == 1

    def test_wait_registry_fires_on_commit(self, manager):
        update = manager.begin("update")
        manager.write(update, 5, 9_999.0)
        query = manager.begin("query", TransactionBounds(import_limit=0.0))
        outcome = manager.read(query, 5)
        assert isinstance(outcome, MustWait)
        woken = []
        manager.waits.subscribe(
            outcome.blocking_transaction, lambda: woken.append(True)
        )
        manager.commit(update)
        assert woken == [True]

    def test_export_charged_to_update(self, manager):
        query = manager.begin("query", TransactionBounds(import_limit=1e6))
        manager.read(query, 5)  # registers the query as a reader
        update = manager.begin("update", TransactionBounds(export_limit=1e6))
        # Force the update to be older than the query's read timestamp.
        object.__setattr__(
            update, "timestamp", query.timestamp._replace(seq=0)
        )
        outcome = manager.write(update, 5, 5_700.0)
        assert isinstance(outcome, Granted)
        assert update.exported == 700.0

    def test_query_commit_clears_reader_registry(self, manager):
        query = manager.begin("query", TransactionBounds(import_limit=1e6))
        manager.read(query, 5)
        assert manager.database.get(5).query_readers
        manager.commit(query)
        assert not manager.database.get(5).query_readers

    def test_query_abort_clears_reader_registry(self, manager):
        query = manager.begin("query", TransactionBounds(import_limit=1e6))
        manager.read(query, 5)
        manager.abort(query)
        assert not manager.database.get(5).query_readers

    def test_active_transactions_tracking(self, manager):
        a = manager.begin("query")
        b = manager.begin("update")
        assert set(manager.active_transactions()) == {a, b}
        manager.commit(a)
        manager.abort(b)
        assert manager.active_transactions() == ()


class TestMetricsIntegration:
    def test_commit_counters(self, manager):
        q = manager.begin("query")
        manager.read(q, 1)
        manager.commit(q)
        u = manager.begin("update")
        manager.write(u, 1, 1.0)
        manager.commit(u)
        snapshot = manager.metrics.snapshot()
        assert snapshot.commits == 2
        assert snapshot.commits_query == 1
        assert snapshot.commits_update == 1
        assert snapshot.reads == 1
        assert snapshot.writes == 1

    def test_abort_reason_recorded(self, manager):
        txn = manager.begin("update")
        manager.abort(txn, "testing")
        assert manager.metrics.aborts_by_reason["testing"] == 1

    def test_operations_per_commit(self, manager):
        u = manager.begin("update")
        manager.read(u, 1)
        manager.read(u, 2)
        manager.write(u, 1, 5.0)
        manager.commit(u)
        assert manager.metrics.snapshot().operations_per_commit == 3.0
