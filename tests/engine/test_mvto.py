"""Multi-version timestamp ordering (the section 5.1 contrast)."""

from __future__ import annotations

import pytest

from repro.core.bounds import HIGH_EPSILON, TransactionBounds
from repro.engine.database import Database
from repro.engine.manager import TransactionManager
from repro.engine.mvto import MVTOManager
from repro.engine.results import Granted, MustWait, Rejected
from repro.errors import InvalidOperation


@pytest.fixture
def manager() -> MVTOManager:
    db = Database()
    db.create_many((i, 1_000.0 * i) for i in range(1, 6))
    return MVTOManager(db)


class TestVersionedReads:
    def test_plain_read_write_commit(self, manager):
        txn = manager.begin("update")
        assert manager.read(txn, 2) == Granted(value=2_000.0)
        manager.write(txn, 2, 2_100.0)
        manager.commit(txn)
        assert manager.database.get(2).committed_value == 2_100.0

    def test_old_reader_gets_old_version(self, manager):
        # This is the defining MVTO behaviour the paper contrasts with:
        # a late read is served the *old* value rather than aborting.
        query = manager.begin("query")
        update = manager.begin("update")
        manager.write(update, 3, 3_700.0)
        manager.commit(update)
        outcome = manager.read(query, 3)
        assert outcome == Granted(value=3_000.0)  # pre-update version

    def test_new_reader_gets_new_version(self, manager):
        update = manager.begin("update")
        manager.write(update, 3, 3_700.0)
        manager.commit(update)
        query = manager.begin("query")
        assert manager.read(query, 3) == Granted(value=3_700.0)

    def test_query_reads_never_wait_on_uncommitted(self, manager):
        update = manager.begin("update")
        manager.write(update, 3, 3_700.0)  # staged, uncommitted
        query = manager.begin("query")
        outcome = manager.read(query, 3)
        assert outcome == Granted(value=3_000.0)  # committed version
        manager.commit(update)

    def test_update_reads_own_staged_write(self, manager):
        update = manager.begin("update")
        manager.write(update, 3, 3_700.0)
        assert manager.read(update, 3) == Granted(value=3_700.0)

    def test_query_result_is_exact_as_of_start(self, manager):
        query = manager.begin("query")
        expected = sum(1_000.0 * i for i in range(1, 6))
        total = 0.0
        for object_id in range(1, 6):
            update = manager.begin("update")
            manager.write(update, object_id, 1.0)
            manager.commit(update)
            total += manager.read(query, object_id).value
        manager.commit(query)
        assert total == expected  # untouched by the interleaved updates


class TestWriteRules:
    def test_write_invalidating_newer_read_rejected(self, manager):
        stale = manager.begin("update")
        query = manager.begin("query")
        manager.read(query, 4)  # newer reader observed the old version
        outcome = manager.write(stale, 4, 4_100.0)
        assert isinstance(outcome, Rejected)
        assert not stale.is_active

    def test_write_write_waits(self, manager):
        a = manager.begin("update")
        manager.write(a, 4, 4_100.0)
        b = manager.begin("update")
        assert manager.write(b, 4, 4_200.0) == MustWait(a.transaction_id)

    def test_older_write_against_staged_rejected(self, manager):
        a = manager.begin("update")
        b = manager.begin("update")
        manager.write(b, 4, 4_200.0)
        outcome = manager.write(a, 4, 4_100.0)
        assert isinstance(outcome, Rejected)

    def test_query_cannot_write(self, manager):
        query = manager.begin("query")
        with pytest.raises(InvalidOperation):
            manager.write(query, 1, 1.0)

    def test_abort_discards_staged_version(self, manager):
        update = manager.begin("update")
        manager.write(update, 4, 9_999.0)
        manager.abort(update)
        query = manager.begin("query")
        assert manager.read(query, 4) == Granted(value=4_000.0)


class TestFreshnessContrast:
    def test_mvto_returns_old_data_where_esr_returns_bounded_new(self):
        """The paper's point in one test: same schedule, different trade."""

        def build(manager_cls, **kwargs):
            db = Database()
            db.create_object(1, 5_000.0)
            return manager_cls(db, **kwargs)

        mvto = build(MVTOManager)
        esr = build(TransactionManager)

        for manager, bounds in ((mvto, None), (esr, HIGH_EPSILON)):
            query = manager.begin("query", bounds or TransactionBounds())
            update = manager.begin("update", HIGH_EPSILON)
            manager.write(update, 1, 5_400.0)
            manager.commit(update)
            outcome = manager.read(query, 1)
            if manager is mvto:
                assert outcome.value == 5_000.0  # exact but old
                assert outcome.inconsistency == 0.0
            else:
                assert outcome.value == 5_400.0  # current, error <= TIL
                assert outcome.inconsistency == 400.0


class TestVersionTrimming:
    def test_chain_capped(self):
        db = Database()
        db.create_object(1, 0.0)
        manager = MVTOManager(db)
        for i in range(200):
            update = manager.begin("update")
            manager.write(update, 1, float(i))
            manager.commit(update)
        chain = manager._store[1].versions
        assert len(chain) <= 64
        # Readers older than the retained window get the oldest version.
        ancient = manager.begin("query")
        object.__setattr__(
            ancient, "timestamp", chain[0].wts._replace(seq=0)
        )
        assert isinstance(manager.read(ancient, 1), Granted)
