"""Tests for the process-per-shard engine composite.

What only :class:`~repro.engine.procshard.ProcessShardedEngine` promises
— worker lifecycle (no orphans, reaping on garbage collection), graceful
failover when a worker dies mid-run, degradation on hosts where
processes cannot help, cross-process wait-for edge mirroring for 2PL
deadlock detection, and the option-validation seams.  Equivalence with
the thread composite on the full protocol matrix lives in
``test_sharded.py`` (the ``processes`` parameterisation).
"""

from __future__ import annotations

import gc
import os
import signal
import time

import pytest

from repro.core.bounds import TransactionBounds
from repro.engine.api import create_engine, validate_protocol_options
from repro.engine.database import Database
from repro.engine.procshard import (
    REASON_SHARD_FAILOVER,
    ProcessShardedEngine,
    process_sharding_unavailable,
)
from repro.engine.results import Granted, MustWait, Rejected
from repro.engine.twopl import REASON_DEADLOCK
from repro.engine.sharded import ShardedEngine
from repro.errors import InvalidOperation, SpecificationError

pytestmark = pytest.mark.skipif(
    process_sharding_unavailable() == "no-fork",
    reason="process sharding needs the fork start method",
)


def _database(n_objects: int = 8, value: float = 100.0) -> Database:
    db = Database()
    for index in range(n_objects):
        db.create_object(index, value=value)
    return db


@pytest.fixture
def make_engine():
    created: list = []

    def make(database=None, protocol="esr", shards=2, **kwargs):
        engine = create_engine(
            database if database is not None else _database(),
            protocol,
            shards=shards,
            processes="force",
            **kwargs,
        )
        created.append(engine)
        return engine

    yield make
    for engine in created:
        engine.close()


def _wait_dead(pids, timeout=5.0):
    """Block until every pid is gone; return the stragglers."""
    deadline = time.monotonic() + timeout
    remaining = list(pids)
    while remaining and time.monotonic() < deadline:
        still = []
        for pid in remaining:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            # A zombie still responds to signal 0; reap it if it is ours.
            done, _status = os.waitpid(pid, os.WNOHANG)
            if done == 0:
                still.append(pid)
        remaining = still
        if remaining:
            time.sleep(0.02)
    return remaining


class TestWorkerLifecycle:
    def test_one_live_worker_per_shard(self, make_engine):
        engine = make_engine(shards=4)
        assert isinstance(engine, ProcessShardedEngine)
        pids = engine.worker_pids()
        assert len(pids) == 4
        assert len(set(pids)) == 4
        for pid in pids:
            os.kill(pid, 0)  # raises if the worker is not alive

    def test_close_joins_every_worker(self, make_engine):
        engine = make_engine(shards=3)
        txn = engine.begin("update", TransactionBounds(export_limit=1e9))
        for object_id in range(3):
            assert isinstance(engine.write(txn, object_id, 7.0), Granted)
        engine.commit(txn)
        pids = [pid for pid in engine.worker_pids() if pid is not None]
        engine.close()
        assert _wait_dead(pids) == []
        engine.close()  # idempotent

    def test_garbage_collection_reaps_workers(self):
        engine = create_engine(
            _database(), "esr", shards=2, processes="force"
        )
        pids = [pid for pid in engine.worker_pids() if pid is not None]
        del engine
        gc.collect()
        assert _wait_dead(pids) == []

    def test_server_close_shuts_workers_down(self):
        from repro.net.server import serve_forever

        server = serve_forever(_database(), shards=2, processes="force")
        try:
            pids = [
                pid for pid in server.manager.worker_pids() if pid is not None
            ]
            assert pids
        finally:
            server.shutdown()
            server.server_close()
        assert _wait_dead(pids) == []


class TestFailover:
    def _kill_worker(self, engine, shard):
        pid = engine.worker_pids()[shard]
        os.kill(pid, signal.SIGKILL)
        os.waitpid(pid, 0)

    def test_worker_death_aborts_and_fails_over(self, make_engine):
        engine = make_engine()
        seed = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.write(seed, 0, 111.0), Granted)
        assert isinstance(engine.write(seed, 1, 222.0), Granted)
        engine.commit(seed)

        victim = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.read(victim, 0), Granted)
        self._kill_worker(engine, shard=0)
        outcome = engine.write(victim, 0, 999.0)
        assert isinstance(outcome, Rejected)
        assert outcome.reason == REASON_SHARD_FAILOVER
        assert not victim.is_active
        assert victim.abort_reason == REASON_SHARD_FAILOVER
        assert engine.failed_shards() == (0,)
        assert engine.worker_pids()[0] is None

        # The shard keeps serving in-process over the mirrored committed
        # state, and the surviving worker shard is untouched.
        retry = engine.begin("update", TransactionBounds(export_limit=1e9))
        read_back = engine.read(retry, 0)
        assert isinstance(read_back, Granted)
        assert read_back.value == 111.0
        assert isinstance(engine.read(retry, 1), Granted)
        assert isinstance(engine.write(retry, 0, 999.0), Granted)
        engine.commit(retry)
        assert engine.database.get(0).committed_value == 999.0

    def test_failover_aborts_bystanders_that_touched_the_shard(
        self, make_engine
    ):
        engine = make_engine()
        bystander = engine.begin("query", TransactionBounds(import_limit=1e9))
        assert isinstance(engine.read(bystander, 0), Granted)  # shard 0
        untouched = engine.begin("query", TransactionBounds(import_limit=1e9))
        assert isinstance(engine.read(untouched, 1), Granted)  # shard 1

        self._kill_worker(engine, shard=0)
        trigger = engine.begin("query", TransactionBounds(import_limit=1e9))
        assert isinstance(engine.read(trigger, 0), Rejected)

        # The bystander's staged state died with the worker: aborted.
        assert not bystander.is_active
        assert bystander.abort_reason == REASON_SHARD_FAILOVER
        with pytest.raises(InvalidOperation):
            engine.read(bystander, 1)
        # A transaction that never touched the dead shard sails on.
        assert untouched.is_active
        engine.commit(untouched)

    def test_failover_is_counted(self, make_engine):
        from repro import perf

        engine = make_engine()
        before = perf.counters.shard_failovers
        self._kill_worker(engine, shard=1)
        probe = engine.begin("query", TransactionBounds(import_limit=1e9))
        assert isinstance(engine.read(probe, 1), Rejected)
        assert perf.counters.shard_failovers == before + 1


class TestDegradation:
    def test_single_core_degrades_to_threads(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        engine = create_engine(_database(), "esr", shards=2, processes=True)
        assert isinstance(engine, ShardedEngine)
        assert engine.process_degraded == "single-core"

    def test_force_overrides_single_core(self, monkeypatch, make_engine):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        engine = make_engine(shards=2)
        assert isinstance(engine, ProcessShardedEngine)

    def test_multi_core_builds_processes(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        engine = create_engine(_database(), "esr", shards=2, processes=True)
        try:
            assert isinstance(engine, ProcessShardedEngine)
        finally:
            engine.close()

    def test_unavailability_reasons_are_closed_set(self):
        assert process_sharding_unavailable() in (
            None,
            "single-core",
            "no-fork",
        )


class TestValidation:
    def test_snapshot_cache_incompatible_with_processes(self):
        with pytest.raises(SpecificationError):
            validate_protocol_options(
                "esr", snapshot_cache=True, shards=2, processes=True
            )
        with pytest.raises(SpecificationError):
            create_engine(
                _database(),
                "esr",
                shards=2,
                processes="force",
                snapshot_cache=True,
            )

    def test_single_shard_ignores_processes(self):
        engine = create_engine(_database(), "esr", shards=1, processes=True)
        assert not isinstance(engine, (ShardedEngine, ProcessShardedEngine))

    def test_no_snapshot_cache_surface(self, make_engine):
        engine = make_engine()
        assert engine.snapshot is None
        txn = engine.begin("query", TransactionBounds(import_limit=1e9))
        assert engine.read_cached(txn, 0) is None
        engine.commit(txn)


class TestCrossProcessWaits:
    def test_cross_shard_deadlock_detected_via_mirrored_edges(
        self, make_engine
    ):
        """2PL's deadlock walk runs inside a worker, but the wait-for
        edges are observed by the parent; the ``wait_note`` broadcast
        must make a cross-shard cycle visible to the worker."""
        engine = make_engine(protocol="2pl")
        t1 = engine.begin("update", TransactionBounds(export_limit=1e9))
        t2 = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.write(t1, 0, 1.0), Granted)  # shard 0
        assert isinstance(engine.write(t2, 1, 2.0), Granted)  # shard 1

        blocked = engine.write(t1, 1, 3.0)
        assert isinstance(blocked, MustWait)
        assert blocked.blocking_transaction == t2.transaction_id
        # The server would park here; subscribing with the waiter id is
        # what records (and broadcasts) the t1 -> t2 edge.
        engine.waits.wait_event(
            blocked.blocking_transaction,
            waiter_transaction=t1.transaction_id,
        )

        outcome = engine.write(t2, 0, 4.0)  # closes the cycle on shard 0
        assert isinstance(outcome, Rejected)
        assert outcome.reason == REASON_DEADLOCK
        assert not t2.is_active
        engine.abort(t1, "test-cleanup")

    def test_wait_and_wakeup_across_processes(self, make_engine):
        """A reader blocked on an uncommitted cross-process write parks
        in the parent and is released by the writer's commit."""
        import threading

        engine = make_engine()
        writer = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.write(writer, 1, 175.0), Granted)
        query = engine.begin("query", TransactionBounds(import_limit=0.0))
        outcome = engine.read(query, 1)
        assert isinstance(outcome, MustWait)
        assert outcome.blocking_transaction == writer.transaction_id

        event = engine.waits.wait_event(
            outcome.blocking_transaction,
            waiter_transaction=query.transaction_id,
        )
        threading.Timer(0.05, engine.commit, args=(writer,)).start()
        assert event.wait(5.0)
        retried = engine.read(query, 1)
        assert isinstance(retried, Granted)
        assert retried.value == 175.0
        engine.commit(query)
