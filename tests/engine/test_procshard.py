"""Tests for the process-per-shard engine composite.

What only :class:`~repro.engine.procshard.ProcessShardedEngine` promises
— worker lifecycle (no orphans, reaping on garbage collection), graceful
failover when a worker dies mid-run, degradation on hosts where
processes cannot help, cross-process wait-for edge mirroring for 2PL
deadlock detection, and the option-validation seams.  Equivalence with
the thread composite on the full protocol matrix lives in
``test_sharded.py`` (the ``processes`` parameterisation).
"""

from __future__ import annotations

import gc
import os
import signal
import time

import pytest

from repro.core.bounds import TransactionBounds
from repro.engine.api import create_engine, validate_protocol_options
from repro.engine.database import Database
from repro.engine.procshard import (
    REASON_SHARD_FAILOVER,
    ProcessShardedEngine,
    process_sharding_unavailable,
)
from repro.engine.results import Granted, MustWait, Rejected
from repro.engine.twopl import REASON_DEADLOCK
from repro.engine.sharded import ShardedEngine
from repro.errors import InvalidOperation, SpecificationError

pytestmark = pytest.mark.skipif(
    process_sharding_unavailable() == "no-fork",
    reason="process sharding needs the fork start method",
)


def _database(n_objects: int = 8, value: float = 100.0) -> Database:
    db = Database()
    for index in range(n_objects):
        db.create_object(index, value=value)
    return db


@pytest.fixture
def make_engine():
    created: list = []

    def make(database=None, protocol="esr", shards=2, **kwargs):
        engine = create_engine(
            database if database is not None else _database(),
            protocol,
            shards=shards,
            processes="force",
            **kwargs,
        )
        created.append(engine)
        return engine

    yield make
    for engine in created:
        engine.close()


def _wait_dead(pids, timeout=5.0):
    """Block until every pid is gone; return the stragglers."""
    deadline = time.monotonic() + timeout
    remaining = list(pids)
    while remaining and time.monotonic() < deadline:
        still = []
        for pid in remaining:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            # A zombie still responds to signal 0; reap it if it is ours.
            done, _status = os.waitpid(pid, os.WNOHANG)
            if done == 0:
                still.append(pid)
        remaining = still
        if remaining:
            time.sleep(0.02)
    return remaining


class TestWorkerLifecycle:
    def test_one_live_worker_per_shard(self, make_engine):
        engine = make_engine(shards=4)
        assert isinstance(engine, ProcessShardedEngine)
        pids = engine.worker_pids()
        assert len(pids) == 4
        assert len(set(pids)) == 4
        for pid in pids:
            os.kill(pid, 0)  # raises if the worker is not alive

    def test_close_joins_every_worker(self, make_engine):
        engine = make_engine(shards=3)
        txn = engine.begin("update", TransactionBounds(export_limit=1e9))
        for object_id in range(3):
            assert isinstance(engine.write(txn, object_id, 7.0), Granted)
        engine.commit(txn)
        pids = [pid for pid in engine.worker_pids() if pid is not None]
        engine.close()
        assert _wait_dead(pids) == []
        engine.close()  # idempotent

    def test_garbage_collection_reaps_workers(self):
        engine = create_engine(
            _database(), "esr", shards=2, processes="force"
        )
        pids = [pid for pid in engine.worker_pids() if pid is not None]
        del engine
        gc.collect()
        assert _wait_dead(pids) == []

    def test_server_close_shuts_workers_down(self):
        from repro.net.server import serve_forever

        server = serve_forever(_database(), shards=2, processes="force")
        try:
            pids = [
                pid for pid in server.manager.worker_pids() if pid is not None
            ]
            assert pids
        finally:
            server.shutdown()
            server.server_close()
        assert _wait_dead(pids) == []


class TestFailover:
    def _kill_worker(self, engine, shard):
        pid = engine.worker_pids()[shard]
        os.kill(pid, signal.SIGKILL)
        os.waitpid(pid, 0)

    def test_worker_death_aborts_and_fails_over(self, make_engine):
        engine = make_engine()
        seed = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.write(seed, 0, 111.0), Granted)
        assert isinstance(engine.write(seed, 1, 222.0), Granted)
        engine.commit(seed)

        victim = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.read(victim, 0), Granted)
        self._kill_worker(engine, shard=0)
        outcome = engine.write(victim, 0, 999.0)
        assert isinstance(outcome, Rejected)
        assert outcome.reason == REASON_SHARD_FAILOVER
        assert not victim.is_active
        assert victim.abort_reason == REASON_SHARD_FAILOVER
        assert engine.failed_shards() == (0,)
        assert engine.worker_pids()[0] is None

        # The shard keeps serving in-process over the mirrored committed
        # state, and the surviving worker shard is untouched.
        retry = engine.begin("update", TransactionBounds(export_limit=1e9))
        read_back = engine.read(retry, 0)
        assert isinstance(read_back, Granted)
        assert read_back.value == 111.0
        assert isinstance(engine.read(retry, 1), Granted)
        assert isinstance(engine.write(retry, 0, 999.0), Granted)
        engine.commit(retry)
        assert engine.database.get(0).committed_value == 999.0

    def test_failover_aborts_bystanders_that_touched_the_shard(
        self, make_engine
    ):
        engine = make_engine()
        bystander = engine.begin("query", TransactionBounds(import_limit=1e9))
        assert isinstance(engine.read(bystander, 0), Granted)  # shard 0
        untouched = engine.begin("query", TransactionBounds(import_limit=1e9))
        assert isinstance(engine.read(untouched, 1), Granted)  # shard 1

        self._kill_worker(engine, shard=0)
        trigger = engine.begin("query", TransactionBounds(import_limit=1e9))
        assert isinstance(engine.read(trigger, 0), Rejected)

        # The bystander's staged state died with the worker: aborted.
        assert not bystander.is_active
        assert bystander.abort_reason == REASON_SHARD_FAILOVER
        with pytest.raises(InvalidOperation):
            engine.read(bystander, 1)
        # A transaction that never touched the dead shard sails on.
        assert untouched.is_active
        engine.commit(untouched)

    def test_failover_is_counted(self, make_engine):
        from repro import perf

        engine = make_engine()
        before = perf.counters.shard_failovers
        self._kill_worker(engine, shard=1)
        probe = engine.begin("query", TransactionBounds(import_limit=1e9))
        assert isinstance(engine.read(probe, 1), Rejected)
        assert perf.counters.shard_failovers == before + 1


class TestDegradation:
    def test_single_core_degrades_to_threads(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        engine = create_engine(_database(), "esr", shards=2, processes=True)
        assert isinstance(engine, ShardedEngine)
        assert engine.process_degraded == "single-core"

    def test_force_overrides_single_core(self, monkeypatch, make_engine):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        engine = make_engine(shards=2)
        assert isinstance(engine, ProcessShardedEngine)

    def test_multi_core_builds_processes(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        engine = create_engine(_database(), "esr", shards=2, processes=True)
        try:
            assert isinstance(engine, ProcessShardedEngine)
        finally:
            engine.close()

    def test_unavailability_reasons_are_closed_set(self):
        assert process_sharding_unavailable() in (
            None,
            "single-core",
            "no-fork",
        )


class TestValidation:
    def test_snapshot_cache_incompatible_with_processes(self):
        with pytest.raises(SpecificationError):
            validate_protocol_options(
                "esr", snapshot_cache=True, shards=2, processes=True
            )
        with pytest.raises(SpecificationError):
            create_engine(
                _database(),
                "esr",
                shards=2,
                processes="force",
                snapshot_cache=True,
            )

    def test_single_shard_ignores_processes(self):
        engine = create_engine(_database(), "esr", shards=1, processes=True)
        assert not isinstance(engine, (ShardedEngine, ProcessShardedEngine))

    def test_no_snapshot_cache_surface(self, make_engine):
        engine = make_engine()
        assert engine.snapshot is None
        txn = engine.begin("query", TransactionBounds(import_limit=1e9))
        assert engine.read_cached(txn, 0) is None
        engine.commit(txn)


class TestCrossProcessWaits:
    def test_cross_shard_deadlock_detected_via_mirrored_edges(
        self, make_engine
    ):
        """2PL's deadlock walk runs inside a worker, but the wait-for
        edges are observed by the parent; the ``wait_note`` broadcast
        must make a cross-shard cycle visible to the worker."""
        engine = make_engine(protocol="2pl")
        t1 = engine.begin("update", TransactionBounds(export_limit=1e9))
        t2 = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.write(t1, 0, 1.0), Granted)  # shard 0
        assert isinstance(engine.write(t2, 1, 2.0), Granted)  # shard 1

        blocked = engine.write(t1, 1, 3.0)
        assert isinstance(blocked, MustWait)
        assert blocked.blocking_transaction == t2.transaction_id
        # The server would park here; subscribing with the waiter id is
        # what records (and broadcasts) the t1 -> t2 edge.
        engine.waits.wait_event(
            blocked.blocking_transaction,
            waiter_transaction=t1.transaction_id,
        )

        outcome = engine.write(t2, 0, 4.0)  # closes the cycle on shard 0
        assert isinstance(outcome, Rejected)
        assert outcome.reason == REASON_DEADLOCK
        assert not t2.is_active
        engine.abort(t1, "test-cleanup")

    def test_wait_and_wakeup_across_processes(self, make_engine):
        """A reader blocked on an uncommitted cross-process write parks
        in the parent and is released by the writer's commit."""
        import threading

        engine = make_engine()
        writer = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.write(writer, 1, 175.0), Granted)
        query = engine.begin("query", TransactionBounds(import_limit=0.0))
        outcome = engine.read(query, 1)
        assert isinstance(outcome, MustWait)
        assert outcome.blocking_transaction == writer.transaction_id

        event = engine.waits.wait_event(
            outcome.blocking_transaction,
            waiter_transaction=query.transaction_id,
        )
        threading.Timer(0.05, engine.commit, args=(writer,)).start()
        assert event.wait(5.0)
        retried = engine.read(query, 1)
        assert isinstance(retried, Granted)
        assert retried.value == 175.0
        engine.commit(query)


# -- delta sync and the fast channel ------------------------------------------


def _drive_stream(engine, seed, objects=8, steps=80):
    """One deterministic interleaved client stream; returns the trace.

    Mixed update/query transactions advance round-robin-by-rng in a
    single thread, so two engines fed the same seed execute the exact
    same operation sequence and must produce the exact same outcomes —
    the fast delta-synced channel has no semantic headroom over the
    legacy full-dump one.
    """
    import random

    rng = random.Random(seed)
    active = []
    trace = []
    for _ in range(steps):
        if not active or (len(active) < 3 and rng.random() < 0.3):
            if rng.random() < 0.5:
                txn = engine.begin(
                    "update",
                    TransactionBounds(export_limit=1e9),
                    allow_inconsistent_reads=True,
                )
                active.append((txn, True))
                trace.append("begin-update")
            else:
                txn = engine.begin(
                    "query", TransactionBounds(import_limit=1e9)
                )
                active.append((txn, False))
                trace.append("begin-query")
            continue
        index = rng.randrange(len(active))
        txn, is_update = active[index]
        roll = rng.random()
        if roll < 0.12:
            if txn.is_active:
                engine.commit(txn)
                trace.append("commit")
            active.pop(index)
            continue
        object_id = rng.randrange(objects)
        if is_update and rng.random() < 0.5:
            outcome = engine.write(txn, object_id, rng.random() * 100.0)
        else:
            outcome = engine.read(txn, object_id)
        if isinstance(outcome, Granted):
            trace.append(
                (
                    "granted",
                    object_id,
                    getattr(outcome, "value", None),
                    round(outcome.inconsistency, 9),
                    outcome.esr_case,
                )
            )
        elif isinstance(outcome, MustWait):
            trace.append(("mustwait", object_id))
            if txn.is_active:
                engine.abort(txn, "stream-blocked")
            active.pop(index)
        else:
            trace.append(("rejected", object_id, outcome.reason))
            active.pop(index)
    for txn, _ in active:
        if txn.is_active:
            engine.commit(txn)
            trace.append("commit")
    return trace


class TestDeltaSync:
    def test_fast_is_the_default_channel(self, make_engine):
        engine = make_engine()
        assert engine.shard_rpc == "fast"

    def test_sync_tag_mix_none_delta_full(self, make_engine):
        """A cross-shard update sees all three sync-in shapes: full on
        first touch, delta after another shard moved the canonical
        state, none when the shard is already current."""
        from repro import perf

        engine = make_engine(database=_database(8), shards=2)
        writer = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.write(writer, 0, 50.0), Granted)
        assert isinstance(engine.write(writer, 1, 60.0), Granted)

        before = perf.counters.snapshot()
        reader = engine.begin(
            "update",
            TransactionBounds(export_limit=1e9, import_limit=1e9),
            allow_inconsistent_reads=True,
        )
        # Uncommitted reads charge import inconsistency, so every op
        # below advances the canonical account version.
        assert isinstance(engine.read(reader, 0), Granted)  # shard 0: full
        assert isinstance(engine.read(reader, 1), Granted)  # shard 1: full
        assert isinstance(engine.read(reader, 2), Granted)  # shard 0: delta
        assert isinstance(engine.read(reader, 4), Granted)  # shard 0: none
        after = perf.counters.snapshot()
        assert after["rpc_sync_full"] - before["rpc_sync_full"] >= 2
        assert after["rpc_sync_delta"] - before["rpc_sync_delta"] >= 1
        assert after["rpc_sync_none"] - before["rpc_sync_none"] >= 1
        engine.abort(reader, "test-done")
        engine.abort(writer, "test-done")

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_fast_and_legacy_channels_are_equivalent(self, make_engine, seed):
        """Property check: the same randomized op stream produces
        identical outcomes and identical final committed state whether
        account state crosses the channel as deltas or as full dumps."""
        traces = {}
        finals = {}
        for mode in ("fast", "legacy"):
            db = _database(8)
            engine = make_engine(database=db, shards=2, shard_rpc=mode)
            traces[mode] = _drive_stream(engine, seed)
            finals[mode] = {
                index: db.get(index).committed_value for index in range(8)
            }
            engine.close()
        assert traces["fast"] == traces["legacy"]
        assert finals["fast"] == finals["legacy"]

    def test_version_skew_triggers_resync_and_recovers(self, make_engine):
        """A parent whose version record lies (claims the worker is
        current when it is not) gets a resync reply, re-sends the full
        state, and the operation still succeeds."""
        from repro import perf

        engine = make_engine(database=_database(8), shards=2)
        txn = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.write(txn, 0, 10.0), Granted)

        sync = engine._sync[txn.transaction_id]
        sync.version += 5  # a revision the worker has never seen
        sync.shard_versions[0] = sync.version  # ...claimed as delivered
        before = perf.counters.rpc_resyncs
        assert isinstance(engine.write(txn, 0, 11.0), Granted)
        assert perf.counters.rpc_resyncs == before + 1
        # The record healed: the next op is an ordinary in-sync frame.
        assert isinstance(engine.write(txn, 2, 12.0), Granted)
        assert perf.counters.rpc_resyncs == before + 1
        engine.commit(txn)
        assert engine.database.get(0).committed_value == 11.0

    def test_failover_serves_delta_synced_commits(self, make_engine):
        """Commits that reached the parent through the delta-sync path
        survive a worker SIGKILL: the mirrored committed state the
        failover engine adopts includes them."""
        engine = make_engine(database=_database(8), shards=2)
        writer = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.write(writer, 0, 41.0), Granted)
        reader = engine.begin(
            "update",
            TransactionBounds(export_limit=1e9, import_limit=1e9),
            allow_inconsistent_reads=True,
        )
        # Charge import inconsistency across both shards so the commit
        # below rides on delta-synced account state.
        assert isinstance(engine.read(reader, 0), Granted)
        assert isinstance(engine.read(reader, 1), Granted)
        assert isinstance(engine.write(reader, 2, 43.0), Granted)
        engine.commit(reader)
        engine.commit(writer)

        pid = engine.worker_pids()[0]
        os.kill(pid, signal.SIGKILL)
        os.waitpid(pid, 0)
        probe = engine.begin("query", TransactionBounds(import_limit=1e9))
        assert isinstance(engine.read(probe, 0), Rejected)  # trips failover
        assert engine.failed_shards() == (0,)

        retry = engine.begin("query", TransactionBounds(import_limit=1e9))
        for object_id, expected in ((0, 41.0), (2, 43.0), (1, 100.0)):
            outcome = engine.read(retry, object_id)
            assert isinstance(outcome, Granted)
            assert outcome.value == expected
        engine.commit(retry)

    def test_legacy_channel_smoke(self, make_engine):
        from repro import perf

        engine = make_engine(database=_database(4), shards=2, shard_rpc="legacy")
        before = perf.counters.snapshot()
        txn = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.write(txn, 0, 7.0), Granted)
        assert isinstance(engine.read(txn, 1), Granted)
        engine.commit(txn)
        after = perf.counters.snapshot()
        assert engine.database.get(0).committed_value == 7.0
        assert after["rpc_ops"] > before["rpc_ops"]
        # The legacy channel never rides batch frames or delta syncs.
        assert after["rpc_batched_ops"] == before["rpc_batched_ops"]
        assert after["rpc_sync_delta"] == before["rpc_sync_delta"]

    def test_unknown_shard_rpc_mode_rejected(self):
        with pytest.raises(SpecificationError):
            validate_protocol_options("esr", shards=2, shard_rpc="bogus")
        with pytest.raises(SpecificationError):
            create_engine(
                _database(), "esr", shards=2, processes="force",
                shard_rpc="bogus",
            )


# -- channel hardening ---------------------------------------------------------


class _FlakySocket:
    """recv() raises InterruptedError ``interrupts`` times, then serves."""

    def __init__(self, data: bytes, interrupts: int):
        self._data = data
        self._interrupts = interrupts

    def recv(self, n: int) -> bytes:
        if self._interrupts > 0:
            self._interrupts -= 1
            raise InterruptedError
        chunk, self._data = self._data[:n], self._data[n:]
        return chunk


class TestChannelHardening:
    def test_recv_exact_rides_out_eintr_and_partial_reads(self):
        from repro.engine.procshard import _recv_exact

        sock = _FlakySocket(b"abcdef", interrupts=5)
        assert _recv_exact(sock, 4) == b"abcd"
        assert _recv_exact(sock, 2) == b"ef"

    def test_recv_exact_bounded_retries_become_typed_error(self):
        from repro.engine.procshard import _recv_exact
        from repro.errors import ShardChannelError

        sock = _FlakySocket(b"abcd", interrupts=10_000)
        with pytest.raises(ShardChannelError) as excinfo:
            _recv_exact(sock, 4, shard=3, pending=7)
        assert excinfo.value.shard == 3
        assert excinfo.value.pending_ops == 7
        assert "shard 3" in str(excinfo.value)
        assert "7 pending ops" in str(excinfo.value)

    def test_torn_frame_header_is_typed_error(self):
        import struct

        from repro.engine.procshard import _recv_typed
        from repro.errors import ShardChannelError

        sock = _FlakySocket(struct.pack("<I", 1 << 31), interrupts=0)
        with pytest.raises(ShardChannelError) as excinfo:
            _recv_typed(sock, shard=1, pending=2)
        assert "torn" in str(excinfo.value)

    def test_worker_refuses_oversized_frame_and_survives(self, make_engine):
        """A frame past the 1 MiB cap gets a typed refusal — the worker
        drains it and keeps serving instead of dying (no failover)."""
        from repro.engine.procshard import (
            _FT_BATCH,
            _FT_ERROR,
            _recv_typed,
            _send_frame,
            MAX_FRAME_BYTES,
        )
        from repro.errors import ProtocolError

        engine = make_engine(database=_database(4), shards=2)
        channel = engine._channels[0]
        with channel.lock:
            _send_frame(channel.sock, _FT_BATCH, b"x" * (MAX_FRAME_BYTES + 64))
            ftype, payload = _recv_typed(channel.sock, shard=0, pending=1)
        assert ftype == _FT_ERROR
        import pickle

        error = pickle.loads(payload)
        assert isinstance(error, ProtocolError)
        assert "oversized" in str(error)
        # The worker lived through it: ordinary traffic still flows.
        txn = engine.begin("update", TransactionBounds(export_limit=1e9))
        assert isinstance(engine.write(txn, 0, 5.0), Granted)
        engine.commit(txn)
        assert engine.failed_shards() == ()

    def test_worker_refuses_unknown_frame_type(self, make_engine):
        import pickle

        from repro.engine.procshard import (
            _FT_ERROR,
            _recv_typed,
            _send_frame,
        )
        from repro.errors import ProtocolError

        engine = make_engine(database=_database(4), shards=2)
        channel = engine._channels[0]
        with channel.lock:
            _send_frame(channel.sock, 0x7A, b"?")
            ftype, payload = _recv_typed(channel.sock, shard=0, pending=1)
        assert ftype == _FT_ERROR
        assert isinstance(pickle.loads(payload), ProtocolError)
        txn = engine.begin("query", TransactionBounds(import_limit=1e9))
        assert isinstance(engine.read(txn, 0), Granted)
        engine.commit(txn)
        assert engine.failed_shards() == ()


# -- flat-combining batching ---------------------------------------------------


class TestBatching:
    def test_queued_callers_share_one_round_trip(self, make_engine):
        """Callers that pile up behind the channel lock ride a single
        combined batch frame when the leader drains the queue."""
        import threading

        from repro import perf

        engine = make_engine(database=_database(8), shards=2)
        channel = engine._channels[0]
        txns = [
            engine.begin("query", TransactionBounds(import_limit=1e9))
            for _ in range(6)
        ]
        outcomes = [None] * len(txns)

        def reader(slot, txn):
            outcomes[slot] = engine.read(txn, (slot % 4) * 2)  # all shard 0

        with channel.lock:  # stall the channel so callers pile up
            threads = [
                threading.Thread(target=reader, args=(slot, txn))
                for slot, txn in enumerate(txns)
            ]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 5.0
            while (
                channel.pending_ops() < len(txns)
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            assert channel.pending_ops() == len(txns)
            before = perf.counters.snapshot()
        for thread in threads:
            thread.join()
        after = perf.counters.snapshot()
        assert all(isinstance(outcome, Granted) for outcome in outcomes)
        assert after["rpc_round_trips"] - before["rpc_round_trips"] == 1
        assert after["rpc_batched_ops"] - before["rpc_batched_ops"] == len(
            txns
        )
        for txn in txns:
            engine.commit(txn)
