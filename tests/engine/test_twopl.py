"""Two-phase-locking divergence control (the Wu et al. alternative)."""

from __future__ import annotations

import pytest

from repro.core.bounds import TransactionBounds
from repro.engine.database import Database
from repro.engine.results import Granted, MustWait, Rejected
from repro.engine.twopl import REASON_DEADLOCK, TwoPhaseManager
from repro.errors import InvalidOperation

HIGH = TransactionBounds(import_limit=100_000.0, export_limit=10_000.0)
ZERO = TransactionBounds()


@pytest.fixture
def manager() -> TwoPhaseManager:
    db = Database()
    db.create_many((i, 1_000.0 * i) for i in range(1, 6))
    return TwoPhaseManager(db)


@pytest.fixture
def strict() -> TwoPhaseManager:
    db = Database()
    db.create_many((i, 1_000.0 * i) for i in range(1, 6))
    return TwoPhaseManager(db, relaxed=False)


class TestPlainLocking:
    def test_read_write_commit(self, manager):
        txn = manager.begin("update", HIGH)
        assert manager.read(txn, 2) == Granted(value=2_000.0)
        assert isinstance(manager.write(txn, 2, 2_100.0), Granted)
        manager.commit(txn)
        assert manager.database.get(2).committed_value == 2_100.0

    def test_abort_restores_and_releases(self, manager):
        txn = manager.begin("update", HIGH)
        manager.write(txn, 2, 9_999.0)
        manager.abort(txn)
        assert manager.database.get(2).committed_value == 2_000.0
        other = manager.begin("update", HIGH)
        assert isinstance(manager.write(other, 2, 2_050.0), Granted)

    def test_query_cannot_write(self, manager):
        query = manager.begin("query", HIGH)
        with pytest.raises(InvalidOperation):
            manager.write(query, 1, 1.0)

    def test_write_write_conflicts_wait(self, manager):
        a = manager.begin("update", HIGH)
        manager.write(a, 3, 3_100.0)
        b = manager.begin("update", HIGH)
        outcome = manager.write(b, 3, 3_200.0)
        assert outcome == MustWait(a.transaction_id)

    def test_update_reads_never_relaxed(self, manager):
        writer = manager.begin("update", HIGH)
        manager.write(writer, 3, 3_100.0)
        reader = manager.begin("update", HIGH)
        assert manager.read(reader, 3) == MustWait(writer.transaction_id)


class TestImportRelaxation:
    def test_query_reads_through_x_lock(self, manager):
        writer = manager.begin("update", HIGH)
        manager.write(writer, 3, 3_400.0)
        query = manager.begin("query", HIGH)
        outcome = manager.read(query, 3)
        assert isinstance(outcome, Granted)
        assert outcome.value == 3_400.0
        assert outcome.inconsistency == 400.0
        assert query.imported == 400.0

    def test_zero_bounds_wait_instead(self, manager):
        writer = manager.begin("update", HIGH)
        manager.write(writer, 3, 3_400.0)
        query = manager.begin("query", ZERO)
        assert manager.read(query, 3) == MustWait(writer.transaction_id)

    def test_strict_manager_never_relaxes(self, strict):
        writer = strict.begin("update", HIGH)
        strict.write(writer, 3, 3_400.0)
        query = strict.begin("query", HIGH)
        assert strict.read(query, 3) == MustWait(writer.transaction_id)

    def test_oil_binds_read_through(self, manager):
        from repro.core.bounds import ObjectBounds

        db = manager.database
        db.get(3).bounds = ObjectBounds(import_limit=100.0)
        writer = manager.begin("update", HIGH)
        manager.write(writer, 3, 3_400.0)
        query = manager.begin("query", HIGH)
        assert manager.read(query, 3) == MustWait(writer.transaction_id)


class TestExportRelaxation:
    def test_update_writes_past_query_readers(self, manager):
        query = manager.begin("query", HIGH)
        manager.read(query, 4)
        update = manager.begin("update", HIGH)
        outcome = manager.write(update, 4, 4_300.0)
        assert isinstance(outcome, Granted)
        assert outcome.inconsistency == 300.0
        assert update.exported == 300.0

    def test_tel_exhausted_waits(self, manager):
        query = manager.begin("query", HIGH)
        manager.read(query, 4)
        update = manager.begin(
            "update", TransactionBounds(export_limit=100.0)
        )
        assert manager.write(update, 4, 4_300.0) == MustWait(
            query.transaction_id
        )

    def test_never_past_update_readers(self, manager):
        reader = manager.begin("update", HIGH)
        manager.read(reader, 4)
        update = manager.begin("update", HIGH)
        assert manager.write(update, 4, 4_300.0) == MustWait(
            reader.transaction_id
        )


class TestDeadlockHandling:
    def _park(self, manager, txn, blocker) -> None:
        """Simulate the runtime registering the wait edge."""
        manager.waits.subscribe(
            blocker.transaction_id,
            lambda: None,
            waiter_transaction=txn.transaction_id,
        )

    def test_two_cycle_detected(self, strict):
        a = strict.begin("update", HIGH)
        b = strict.begin("update", HIGH)
        strict.write(a, 1, 1.0)
        strict.write(b, 2, 2.0)
        outcome = strict.write(a, 2, 3.0)
        assert outcome == MustWait(b.transaction_id)
        self._park(strict, a, b)
        outcome = strict.write(b, 1, 4.0)
        assert isinstance(outcome, Rejected)
        assert outcome.reason == REASON_DEADLOCK
        assert not b.is_active  # the victim was aborted

    def test_victim_release_unblocks_survivor(self, strict):
        a = strict.begin("update", HIGH)
        b = strict.begin("update", HIGH)
        strict.write(a, 1, 1.0)
        strict.write(b, 2, 2.0)
        strict.write(a, 2, 3.0)
        self._park(strict, a, b)
        strict.write(b, 1, 4.0)  # deadlock: b aborted, locks released
        assert isinstance(strict.write(a, 2, 3.0), Granted)
        strict.commit(a)

    def test_chain_without_cycle_waits(self, strict):
        a = strict.begin("update", HIGH)
        b = strict.begin("update", HIGH)
        c = strict.begin("update", HIGH)
        strict.write(a, 1, 1.0)
        strict.write(b, 2, 2.0)
        outcome = strict.write(c, 2, 5.0)
        assert outcome == MustWait(b.transaction_id)
        self._park(strict, c, b)
        outcome = strict.write(b, 1, 6.0)
        assert outcome == MustWait(a.transaction_id)  # b->a, no cycle


class TestMetricsParity:
    def test_same_counters_as_tso_manager(self, manager):
        query = manager.begin("query", HIGH)
        manager.read(query, 1)
        manager.commit(query)
        snapshot = manager.metrics.snapshot()
        assert snapshot.commits_query == 1
        assert snapshot.reads == 1
