"""Pluggable distance functions at the engine level."""

from __future__ import annotations

import pytest

from repro.core.bounds import TransactionBounds
from repro.core.metric import ScaledDistance, discrete_distance
from repro.engine.database import Database
from repro.engine.manager import TransactionManager
from repro.engine.results import Granted, Rejected


@pytest.fixture
def db() -> Database:
    db = Database()
    db.create_many((i, 1_000.0) for i in range(1, 6))
    return db


class TestScaledDistanceManager:
    def test_import_charged_in_scaled_units(self, db):
        # Inconsistency measured in cents while values are in dollars.
        manager = TransactionManager(db, distance=ScaledDistance(100.0))
        update = manager.begin("update", TransactionBounds(export_limit=1e12))
        manager.write(update, 1, 1_003.0)  # +3 dollars, staged
        query = manager.begin(
            "query", TransactionBounds(import_limit=500.0)
        )
        outcome = manager.read(query, 1)
        assert isinstance(outcome, Granted)
        assert outcome.inconsistency == 300.0  # 3 dollars = 300 cents
        assert query.imported == 300.0

    def test_scaled_bound_rejection(self, db):
        manager = TransactionManager(db, distance=ScaledDistance(100.0))
        update = manager.begin("update", TransactionBounds(export_limit=1e12))
        manager.write(update, 1, 1_010.0)  # 10 dollars = 1000 cents
        query = manager.begin(
            "query", TransactionBounds(import_limit=500.0)
        )
        outcome = manager.read(query, 1)
        # 1000 cents > TIL 500: cannot admit; the query is younger than
        # the writer so strict ordering says wait.
        assert not isinstance(outcome, Granted)


class TestDiscreteDistanceManager:
    def test_counts_divergent_views(self, db):
        # Under the discrete metric, the TIL reads as "at most k reads may
        # view any divergence at all".
        manager = TransactionManager(db, distance=discrete_distance)
        update = manager.begin("update", TransactionBounds(export_limit=1e12))
        manager.write(update, 1, 2_000.0)
        manager.write(update, 2, 2_000.0)
        manager.write(update, 3, 2_000.0)
        query = manager.begin("query", TransactionBounds(import_limit=2.0))
        assert isinstance(manager.read(query, 1), Granted)
        assert isinstance(manager.read(query, 2), Granted)
        assert query.imported == 2.0
        third = manager.read(query, 3)
        assert not isinstance(third, Granted)  # the third stale view is over budget
