"""The importing-updates extension (beyond the paper).

The paper studies consistent update ETs only, noting that "update ETs
can view inconsistent data the same way query ETs do".  An update begun
with ``allow_inconsistent_reads=True`` and a non-zero import limit reads
through conflicts like a query; everything else about it (export
accounting, write conflicts) is unchanged.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import TransactionBounds
from repro.engine.database import Database
from repro.engine.manager import TransactionManager
from repro.engine.results import Granted, MustWait, Rejected


@pytest.fixture
def manager() -> TransactionManager:
    db = Database()
    db.create_many((i, 1_000.0) for i in range(1, 6))
    return TransactionManager(db)


BOTH = TransactionBounds(import_limit=10_000.0, export_limit=10_000.0)


class TestOptIn:
    def test_default_updates_stay_consistent(self, manager):
        writer = manager.begin("update", BOTH)
        manager.write(writer, 1, 1_500.0)
        plain = manager.begin("update", BOTH)
        outcome = manager.read(plain, 1)
        assert outcome == MustWait(writer.transaction_id)
        assert plain.import_account is None

    def test_opted_in_update_reads_uncommitted(self, manager):
        writer = manager.begin("update", BOTH)
        manager.write(writer, 1, 1_500.0)
        relaxed = manager.begin(
            "update", BOTH, allow_inconsistent_reads=True
        )
        outcome = manager.read(relaxed, 1)
        assert isinstance(outcome, Granted)
        assert outcome.value == 1_500.0
        assert outcome.inconsistency == 500.0
        assert relaxed.imported == 500.0

    def test_opted_in_update_late_read(self, manager):
        relaxed = manager.begin(
            "update", BOTH, allow_inconsistent_reads=True
        )
        writer = manager.begin("update", BOTH)
        manager.write(writer, 1, 1_200.0)
        manager.commit(writer)
        outcome = manager.read(relaxed, 1)  # late: newer committed write
        assert isinstance(outcome, Granted)
        assert outcome.inconsistency == 200.0

    def test_import_limit_still_enforced(self, manager):
        writer = manager.begin("update", BOTH)
        manager.write(writer, 1, 9_999.0)
        tight = manager.begin(
            "update",
            TransactionBounds(import_limit=100.0, export_limit=10_000.0),
            allow_inconsistent_reads=True,
        )
        outcome = manager.read(tight, 1)
        # 8,999 of divergence exceeds the 100 import limit: SR fallback.
        assert isinstance(outcome, (MustWait, Rejected))

    def test_flag_without_import_limit_is_inert(self, manager):
        writer = manager.begin("update", BOTH)
        manager.write(writer, 1, 1_500.0)
        txn = manager.begin(
            "update",
            TransactionBounds(export_limit=10_000.0),
            allow_inconsistent_reads=True,
        )
        assert txn.import_account is None
        assert isinstance(manager.read(txn, 1), MustWait)

    def test_queries_unaffected_by_flag(self, manager):
        query = manager.begin(
            "query",
            TransactionBounds(import_limit=1_000.0),
            allow_inconsistent_reads=True,
        )
        assert query.import_account is query.account


class TestSeparateAccounts:
    def test_import_and_export_tracked_independently(self, manager):
        # The relaxed update imports on its read and exports on a late
        # write; the two totals live in separate accounts.
        staged = manager.begin("update", BOTH)
        manager.write(staged, 1, 1_400.0)

        relaxed = manager.begin(
            "update", BOTH, allow_inconsistent_reads=True
        )
        manager.read(relaxed, 1)  # imports 400
        assert relaxed.imported == 400.0
        assert relaxed.exported == 0.0

        # A newer query reads object 2, then the relaxed update (older
        # than that read) writes it: a case-3 export.
        query = manager.begin("query", TransactionBounds(import_limit=1e9))
        manager.read(query, 2)
        outcome = manager.write(relaxed, 2, 1_250.0)
        assert isinstance(outcome, Granted)
        assert relaxed.exported == 250.0
        assert relaxed.imported == 400.0  # unchanged by the write

        manager.abort(staged)
        manager.abort(query)

    def test_propagation_is_authorised_but_visible(self, manager):
        # The imported error can flow into written values: read a staged
        # 1_500 (divergence 500) and write it elsewhere.  The system's
        # job is accounting, not prevention — by design.
        staged = manager.begin("update", BOTH)
        manager.write(staged, 1, 1_500.0)
        relaxed = manager.begin(
            "update", BOTH, allow_inconsistent_reads=True
        )
        value = manager.read(relaxed, 1).value
        manager.write(relaxed, 3, value)
        manager.commit(relaxed)
        manager.abort(staged)  # the source value never commits!
        assert manager.database.get(3).committed_value == 1_500.0
        assert manager.database.get(1).committed_value == 1_000.0
