"""The 2PL lock table."""

from __future__ import annotations

from repro.engine.locks import LockMode, LockTable


class TestSharedLocks:
    def test_shared_locks_are_compatible(self):
        table = LockTable()
        assert table.acquire_shared(1, 10) is None
        assert table.acquire_shared(2, 10) is None
        assert sorted(table.shared_holders(10)) == [1, 2]

    def test_reacquire_is_idempotent(self):
        table = LockTable()
        table.acquire_shared(1, 10)
        assert table.acquire_shared(1, 10) is None
        assert table.mode_held(1, 10) == LockMode.SHARED

    def test_shared_blocked_by_exclusive(self):
        table = LockTable()
        table.acquire_exclusive(1, 10)
        assert table.acquire_shared(2, 10) == 1

    def test_holder_of_exclusive_may_read(self):
        table = LockTable()
        table.acquire_exclusive(1, 10)
        assert table.acquire_shared(1, 10) is None
        assert table.mode_held(1, 10) == LockMode.EXCLUSIVE


class TestExclusiveLocks:
    def test_exclusive_blocked_by_shared(self):
        table = LockTable()
        table.acquire_shared(1, 10)
        assert table.acquire_exclusive(2, 10) == 1

    def test_exclusive_blocked_by_exclusive(self):
        table = LockTable()
        table.acquire_exclusive(1, 10)
        assert table.acquire_exclusive(2, 10) == 1

    def test_upgrade_when_sole_holder(self):
        table = LockTable()
        table.acquire_shared(1, 10)
        assert table.acquire_exclusive(1, 10) is None
        assert table.mode_held(1, 10) == LockMode.EXCLUSIVE

    def test_upgrade_blocked_by_other_shared(self):
        table = LockTable()
        table.acquire_shared(1, 10)
        table.acquire_shared(2, 10)
        assert table.acquire_exclusive(1, 10) == 2

    def test_ignore_set_allows_coexistence(self):
        # The divergence-control relaxation: write past query readers.
        table = LockTable()
        table.acquire_shared(1, 10)
        table.acquire_shared(2, 10)
        assert table.acquire_exclusive(3, 10, ignore={1, 2}) is None
        assert table.exclusive_holder(10) == 3
        assert sorted(table.shared_holders(10)) == [1, 2]


class TestRelease:
    def test_release_all_drops_everything(self):
        table = LockTable()
        table.acquire_shared(1, 10)
        table.acquire_exclusive(1, 11)
        assert table.held_by(1) == {10, 11}
        table.release_all(1)
        assert table.held_by(1) == set()
        assert table.acquire_exclusive(2, 10) is None
        assert table.acquire_exclusive(2, 11) == 2 or True  # now re-grantable

    def test_release_unknown_transaction_is_noop(self):
        LockTable().release_all(99)

    def test_release_unblocks_waiters_logically(self):
        table = LockTable()
        table.acquire_exclusive(1, 10)
        assert table.acquire_shared(2, 10) == 1
        table.release_all(1)
        assert table.acquire_shared(2, 10) is None
