"""Data objects: versions, proper values, staging, reader registry."""

from __future__ import annotations

import pytest

from repro.core.bounds import ObjectBounds
from repro.engine.objects import DataObject, Version
from repro.engine.timestamps import GENESIS, Timestamp


def ts(t: float) -> Timestamp:
    return Timestamp(t, 0, 0)


class TestValueViews:
    def test_initial_state(self):
        obj = DataObject(7, 5_000.0)
        assert obj.present_value == 5_000.0
        assert obj.committed_value == 5_000.0
        assert not obj.has_uncommitted_write
        assert obj.versions() == (Version(GENESIS, 5_000.0),)

    def test_present_value_reflects_staged_write(self):
        obj = DataObject(7, 5_000.0)
        obj.stage_write(1, ts(10), 6_000.0)
        assert obj.present_value == 6_000.0
        assert obj.committed_value == 5_000.0  # in-place + shadow semantics

    def test_default_bounds_unbounded(self):
        obj = DataObject(7, 1.0)
        assert obj.bounds == ObjectBounds()


class TestProperValue:
    def test_walks_back_to_newest_older_write(self):
        obj = DataObject(7, 1_000.0)
        for t, value in ((10, 2_000.0), (20, 3_000.0), (30, 4_000.0)):
            obj.stage_write(t, ts(t), value)
            obj.commit_write()
        assert obj.proper_value_for(ts(25)) == 3_000.0
        assert obj.proper_value_for(ts(15)) == 2_000.0
        assert obj.proper_value_for(ts(5)) == 1_000.0
        assert obj.proper_value_for(ts(35)) == 4_000.0

    def test_window_eviction_falls_back_to_oldest_retained(self):
        obj = DataObject(7, 1_000.0, version_window=3)
        for t in range(1, 10):
            obj.stage_write(t, ts(t), 1_000.0 + t)
            obj.commit_write()
        # Window retains writes 7, 8, 9; a very old reader gets write 7.
        assert obj.proper_value_for(ts(0.5)) == 1_007.0

    def test_paper_window_is_twenty(self):
        obj = DataObject(7, 0.0)
        for t in range(1, 30):
            obj.stage_write(t, ts(t), float(t))
            obj.commit_write()
        assert len(obj.versions()) == 20


class TestStaging:
    def test_commit_promotes_and_versions(self):
        obj = DataObject(7, 5_000.0)
        obj.stage_write(1, ts(10), 6_000.0)
        obj.commit_write()
        assert obj.committed_value == 6_000.0
        assert obj.committed_write_ts == ts(10)
        assert not obj.has_uncommitted_write
        assert obj.versions()[-1] == Version(ts(10), 6_000.0)

    def test_abort_restores_shadow(self):
        obj = DataObject(7, 5_000.0)
        obj.stage_write(1, ts(10), 6_000.0)
        obj.abort_write()
        assert obj.committed_value == 5_000.0
        assert obj.present_value == 5_000.0
        assert not obj.has_uncommitted_write
        assert len(obj.versions()) == 1  # aborted write leaves no version

    def test_same_transaction_overwrites_keeping_shadow(self):
        obj = DataObject(7, 5_000.0)
        obj.stage_write(1, ts(10), 6_000.0)
        obj.stage_write(1, ts(10), 7_000.0)
        assert obj.present_value == 7_000.0
        obj.abort_write()
        assert obj.committed_value == 5_000.0

    def test_conflicting_stager_is_a_bug(self):
        obj = DataObject(7, 5_000.0)
        obj.stage_write(1, ts(10), 6_000.0)
        with pytest.raises(AssertionError):
            obj.stage_write(2, ts(11), 6_500.0)

    def test_commit_and_abort_without_stage_are_noops(self):
        obj = DataObject(7, 5_000.0)
        obj.commit_write()
        obj.abort_write()
        assert obj.committed_value == 5_000.0


class TestReadBookkeeping:
    def test_read_ts_only_advances(self):
        obj = DataObject(7, 0.0)
        obj.record_read(1, ts(10), True, 0.0)
        obj.record_read(2, ts(5), False, 0.0)
        assert obj.read_ts == ts(10)
        assert obj.last_reader_was_query  # the newest read was the query

    def test_newest_reader_kind_tracked(self):
        obj = DataObject(7, 0.0)
        obj.record_read(1, ts(10), True, 0.0)
        obj.record_read(2, ts(20), False, 0.0)
        assert not obj.last_reader_was_query

    def test_query_readers_register_proper_values(self):
        obj = DataObject(7, 0.0)
        obj.record_read(1, ts(10), True, 111.0)
        obj.record_read(2, ts(12), True, 222.0)
        obj.record_read(3, ts(14), False, 0.0)  # updates never register
        assert obj.query_readers == {1: 111.0, 2: 222.0}

    def test_forget_reader(self):
        obj = DataObject(7, 0.0)
        obj.record_read(1, ts(10), True, 111.0)
        obj.forget_reader(1)
        obj.forget_reader(99)  # unknown id is fine
        assert obj.query_readers == {}

    def test_repr_mentions_pending_writer(self):
        obj = DataObject(7, 5.0)
        obj.stage_write(42, ts(1), 6.0)
        assert "writer=42" in repr(obj)
