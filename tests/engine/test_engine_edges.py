"""Engine corner cases that the main suites step around."""

from __future__ import annotations

import pytest

from repro.core.bounds import HIGH_EPSILON, TransactionBounds
from repro.engine.database import Database
from repro.engine.manager import TransactionManager
from repro.engine.objects import DataObject
from repro.engine.results import Granted
from repro.engine.timestamps import Timestamp


@pytest.fixture
def manager() -> TransactionManager:
    db = Database()
    db.create_many((i, 1_000.0) for i in range(1, 6))
    return TransactionManager(db)


class TestRepeatedAccess:
    def test_double_write_commits_one_version(self, manager):
        txn = manager.begin("update", HIGH_EPSILON)
        manager.write(txn, 1, 1_100.0)
        manager.write(txn, 1, 1_200.0)
        manager.commit(txn)
        obj = manager.database.get(1)
        assert obj.committed_value == 1_200.0
        # Only the final value became a version (single staged slot).
        committed = [v for v in obj.versions() if v.value in (1_100.0, 1_200.0)]
        assert [v.value for v in committed] == [1_200.0]

    def test_double_write_abort_restores_original(self, manager):
        txn = manager.begin("update", HIGH_EPSILON)
        manager.write(txn, 1, 1_100.0)
        manager.write(txn, 1, 1_200.0)
        manager.abort(txn)
        assert manager.database.get(1).committed_value == 1_000.0

    def test_repeated_read_same_object(self, manager):
        query = manager.begin("query", HIGH_EPSILON)
        first = manager.read(query, 1)
        second = manager.read(query, 1)
        assert first == second
        assert query.operations == 2

    def test_read_own_write_then_commit(self, manager):
        txn = manager.begin("update", HIGH_EPSILON)
        manager.write(txn, 2, 2_222.0)
        outcome = manager.read(txn, 2)
        assert outcome == Granted(value=2_222.0)
        manager.commit(txn)


class TestRepeatedImports:
    def test_import_accumulates_across_repeated_reads(self, manager):
        # Two reads of an object whose staged value changes between them:
        # each divergence charges the account separately (the paper's
        # worst case for multiple operations on one object).
        writer = manager.begin("update", HIGH_EPSILON)
        manager.write(writer, 3, 1_100.0)
        query = manager.begin("query", TransactionBounds(import_limit=500.0))
        assert manager.read(query, 3).inconsistency == 100.0
        manager.write(writer, 3, 1_300.0)
        assert manager.read(query, 3).inconsistency == 300.0
        assert query.imported == 400.0
        # Both extremes were recorded for aggregate envelopes.
        value_range = query.account.value_range(3)
        assert (value_range.minimum, value_range.maximum) == (1_100.0, 1_300.0)


class TestVersionWindowEdge:
    def test_window_one_still_serves_proper_values(self):
        db = Database(version_window=1)
        db.create_object(1, 1_000.0)
        manager = TransactionManager(db)
        query = manager.begin("query", HIGH_EPSILON)
        writer = manager.begin("update", HIGH_EPSILON)
        manager.write(writer, 1, 3_000.0)
        manager.commit(writer)
        outcome = manager.read(query, 1)
        assert isinstance(outcome, Granted)
        # With only one retained version the proper value degrades to the
        # newest committed write, so the measured divergence collapses.
        assert outcome.inconsistency == 0.0

    def test_default_window_measures_the_same_case(self):
        db = Database()  # window 20
        db.create_object(1, 1_000.0)
        manager = TransactionManager(db)
        query = manager.begin("query", HIGH_EPSILON)
        writer = manager.begin("update", HIGH_EPSILON)
        manager.write(writer, 1, 3_000.0)
        manager.commit(writer)
        outcome = manager.read(query, 1)
        assert outcome.inconsistency == 2_000.0


class TestTimestampTies:
    def test_equal_ticks_resolved_by_site(self):
        obj = DataObject(1, 500.0)
        obj.stage_write(9, Timestamp(10.0, 2, 1), 600.0)
        obj.commit_write()
        from repro.core.hierarchy import GroupCatalog
        from repro.engine.esr import esr_read_decision
        from repro.engine.transactions import TransactionKind, TransactionState

        reader = TransactionState(
            transaction_id=2,
            kind=TransactionKind.QUERY,
            timestamp=Timestamp(10.0, 1, 1),  # same ticks, lower site
            bounds=TransactionBounds(import_limit=1e9),
            catalog=GroupCatalog(),
        )
        outcome = esr_read_decision(obj, reader)
        # Site 1 < site 2, so the reader is (deterministically) older and
        # its read is late — admitted through ESR with the divergence.
        assert isinstance(outcome, Granted)
        assert outcome.inconsistency == 100.0
