"""The strict-TSO (SR baseline) decision matrix."""

from __future__ import annotations

import pytest

from repro.core.bounds import TransactionBounds
from repro.core.hierarchy import GroupCatalog
from repro.engine.objects import DataObject
from repro.engine.results import Granted, MustWait, Rejected
from repro.engine.timestamps import Timestamp
from repro.engine.transactions import TransactionKind, TransactionState
from repro.engine.tso import sr_read_decision, sr_write_decision


def ts(t: float) -> Timestamp:
    return Timestamp(t, 0, 0)


def make_txn(kind: str, when: float, txn_id: int = 1) -> TransactionState:
    return TransactionState(
        transaction_id=txn_id,
        kind=TransactionKind(kind),
        timestamp=ts(when),
        bounds=TransactionBounds(),
        catalog=GroupCatalog(),
    )


class TestReadDecision:
    def test_plain_read_granted(self):
        obj = DataObject(1, 500.0)
        outcome = sr_read_decision(obj, make_txn("query", 10))
        assert outcome == Granted(value=500.0)

    def test_late_read_rejected(self):
        obj = DataObject(1, 500.0)
        obj.stage_write(9, ts(20), 600.0)
        obj.commit_write()
        outcome = sr_read_decision(obj, make_txn("query", 10))
        assert isinstance(outcome, Rejected)
        assert outcome.reason == "late-read"

    def test_read_of_uncommitted_write_waits(self):
        obj = DataObject(1, 500.0)
        obj.stage_write(9, ts(5), 600.0)
        outcome = sr_read_decision(obj, make_txn("query", 10))
        assert outcome == MustWait(blocking_transaction=9)

    def test_read_older_than_uncommitted_write_rejected(self):
        obj = DataObject(1, 500.0)
        obj.stage_write(9, ts(20), 600.0)
        outcome = sr_read_decision(obj, make_txn("query", 10))
        assert isinstance(outcome, Rejected)

    def test_reading_own_staged_write(self):
        obj = DataObject(1, 500.0)
        obj.stage_write(1, ts(10), 700.0)
        outcome = sr_read_decision(obj, make_txn("update", 10, txn_id=1))
        assert outcome == Granted(value=700.0)


class TestWriteDecision:
    def test_plain_write_granted(self):
        obj = DataObject(1, 500.0)
        assert sr_write_decision(obj, make_txn("update", 10)) == Granted()

    def test_write_late_wrt_committed_write_rejected(self):
        obj = DataObject(1, 500.0)
        obj.stage_write(9, ts(20), 600.0)
        obj.commit_write()
        outcome = sr_write_decision(obj, make_txn("update", 10))
        assert isinstance(outcome, Rejected)
        assert outcome.reason == "late-write"

    def test_write_late_wrt_read_rejected(self):
        obj = DataObject(1, 500.0)
        obj.record_read(5, ts(20), True, 500.0)
        outcome = sr_write_decision(obj, make_txn("update", 10))
        assert isinstance(outcome, Rejected)
        assert outcome.reason == "late-write"

    def test_write_over_uncommitted_write_waits(self):
        obj = DataObject(1, 500.0)
        obj.stage_write(9, ts(5), 600.0)
        outcome = sr_write_decision(obj, make_txn("update", 10))
        assert outcome == MustWait(blocking_transaction=9)

    def test_write_older_than_uncommitted_write_rejected(self):
        obj = DataObject(1, 500.0)
        obj.stage_write(9, ts(20), 600.0)
        outcome = sr_write_decision(obj, make_txn("update", 10))
        assert isinstance(outcome, Rejected)


class TestNoDeadlockInvariant:
    @pytest.mark.parametrize("decision", [sr_read_decision])
    def test_waits_only_point_at_older_transactions(self, decision):
        """A MustWait is only ever issued when the waiter is younger."""
        obj = DataObject(1, 500.0)
        obj.stage_write(9, ts(5), 600.0)
        younger = make_txn("query", 10)
        outcome = decision(obj, younger)
        assert isinstance(outcome, MustWait)
        # The same conflict from an older transaction must NOT wait.
        older = make_txn("query", 2)
        assert not isinstance(decision(obj, older), MustWait)
