"""The wait-vs-abort strict-ordering policy (paper section 4)."""

from __future__ import annotations

import pytest

from repro.core.bounds import TransactionBounds
from repro.engine.database import Database
from repro.engine.manager import TransactionManager
from repro.engine.results import MustWait, Rejected
from repro.errors import SpecificationError


def build(wait_policy: str) -> TransactionManager:
    db = Database()
    db.create_many((i, 1_000.0) for i in range(1, 4))
    return TransactionManager(db, wait_policy=wait_policy)


class TestWaitPolicy:
    def test_unknown_policy_rejected(self):
        with pytest.raises(SpecificationError, match="wait policy"):
            build("retry")

    def test_wait_policy_parks_the_reader(self):
        manager = build("wait")
        writer = manager.begin("update")
        manager.write(writer, 1, 1_500.0)
        reader = manager.begin("query", TransactionBounds())
        outcome = manager.read(reader, 1)
        assert outcome == MustWait(writer.transaction_id)
        assert reader.is_active
        assert manager.metrics.waits == 1

    def test_abort_policy_rejects_the_reader(self):
        manager = build("abort")
        writer = manager.begin("update")
        manager.write(writer, 1, 1_500.0)
        reader = manager.begin("query", TransactionBounds())
        outcome = manager.read(reader, 1)
        assert isinstance(outcome, Rejected)
        assert outcome.reason == "conflict-abort"
        assert not reader.is_active  # auto-aborted for resubmission
        assert manager.metrics.waits == 0
        assert manager.metrics.aborts_by_reason["conflict-abort"] == 1

    def test_abort_policy_applies_to_writes_too(self):
        manager = build("abort")
        first = manager.begin("update")
        manager.write(first, 2, 2_000.0)
        second = manager.begin("update")
        outcome = manager.write(second, 2, 2_100.0)
        assert isinstance(outcome, Rejected)
        assert outcome.reason == "conflict-abort"

    def test_abort_policy_leaves_grants_untouched(self):
        manager = build("abort")
        txn = manager.begin("update")
        assert manager.read(txn, 1).value == 1_000.0
        manager.write(txn, 1, 1_100.0)
        manager.commit(txn)
        assert manager.database.get(1).committed_value == 1_100.0

    def test_esr_admission_bypasses_the_policy(self):
        # With bounds, the conflicting read is admitted rather than
        # waited on, so the policy never engages.
        manager = build("abort")
        writer = manager.begin("update")
        manager.write(writer, 1, 1_500.0)
        reader = manager.begin(
            "query", TransactionBounds(import_limit=1_000.0)
        )
        outcome = manager.read(reader, 1)
        assert outcome.value == 1_500.0
        assert reader.is_active
