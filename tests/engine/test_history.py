"""The history seam: recording, derivation parity, exactly-once completion.

The recorder is the single choke-point every engine's lifecycle hooks go
through, so two invariants are pinned here:

* **derivation parity** — metrics derived from the recorded events equal
  the engine's own ``MetricsCollector`` snapshot (they come from the
  same hooks, so they can never disagree);
* **exactly-once completion** — every transaction gets exactly one
  commit *or* one abort event, on every engine shape and on every path
  (client abort, rejection auto-abort, composite absorption).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.bounds import ObjectBounds, TransactionBounds
from repro.engine.api import create_engine
from repro.engine.database import Database
from repro.engine.history import (
    EVENT_ABORT,
    EVENT_COMMIT,
    EVENT_REJECT,
    HistoryLog,
    derive_metrics,
)
from repro.engine.procshard import process_sharding_unavailable
from repro.engine.reasons import REASON_CLIENT_ABORT, REJECTION_REASONS
from repro.engine.results import Granted, Rejected


def _bounded_db(n: int = 8) -> Database:
    db = Database()
    db.create_many(
        ((i, 100.0 * (i + 1)) for i in range(n)),
        bounds=ObjectBounds(import_limit=1e9, export_limit=1e9),
    )
    return db


def _run_mixed_load(engine) -> None:
    """Commits, client aborts, and an ESR rejection, deterministically."""
    # Plain committed update and query.
    t1 = engine.begin("update", TransactionBounds(0.0, 50.0))
    assert isinstance(engine.write(t1, 0, 123.0), Granted)
    engine.commit(t1)
    q1 = engine.begin("query", TransactionBounds(50.0, 0.0))
    assert isinstance(engine.read(q1, 0), Granted)
    engine.commit(q1)
    # Client abort.
    t2 = engine.begin("update")
    engine.write(t2, 1, 7.0)
    engine.abort(t2)
    # Rejection auto-abort: a zero-bound query whose read arrives after
    # a newer committed write (the paper's case 1) cannot absorb the
    # divergence and is rejected.
    strict = engine.begin("query", TransactionBounds(0.0, 0.0))
    writer = engine.begin("update", TransactionBounds(0.0, 1e9))
    engine.write(writer, 2, 999.0)
    engine.commit(writer)
    outcome = engine.read(strict, 2)
    assert isinstance(outcome, Rejected)


def _completion_events(events) -> dict[int, Counter]:
    per_txn: dict[int, Counter] = {}
    for event in events:
        if event.kind in (EVENT_COMMIT, EVENT_ABORT):
            per_txn.setdefault(event.txn, Counter())[event.kind] += 1
    return per_txn


ENGINE_SHAPES = [
    pytest.param({}, id="bare"),
    pytest.param({"shards": 2}, id="sharded"),
    pytest.param(
        {"shards": 2, "processes": "force"},
        id="procshard",
        marks=pytest.mark.skipif(
            process_sharding_unavailable() == "no-fork",
            reason="process sharding needs the fork start method",
        ),
    ),
]


class TestRecordingParity:
    @pytest.mark.parametrize("shape", ENGINE_SHAPES)
    def test_derived_metrics_match_collector(self, shape):
        engine = create_engine(
            _bounded_db(), "esr", record_history=True, **shape
        )
        try:
            _run_mixed_load(engine)
            log = HistoryLog.from_engine(engine)
            derived = derive_metrics(log.events)
            assert derived.snapshot() == engine.metrics.snapshot()
        finally:
            close = getattr(engine, "close", None)
            if close:
                close()

    @pytest.mark.parametrize("shape", ENGINE_SHAPES)
    def test_every_transaction_completes_exactly_once(self, shape):
        engine = create_engine(
            _bounded_db(), "esr", record_history=True, **shape
        )
        try:
            _run_mixed_load(engine)
            events = HistoryLog.from_engine(engine).events
            completions = _completion_events(events)
            # 5 transactions above, each with exactly one completion.
            assert len(completions) == 5
            for txn, counter in completions.items():
                assert sum(counter.values()) == 1, (
                    f"transaction {txn} completed {dict(counter)}"
                )
            # The counters agree with the metrics the engine kept.
            snapshot = engine.metrics.snapshot()
            commits = sum(c[EVENT_COMMIT] for c in completions.values())
            aborts = sum(c[EVENT_ABORT] for c in completions.values())
            assert commits == snapshot.commits
            assert aborts == snapshot.aborts
        finally:
            close = getattr(engine, "close", None)
            if close:
                close()

    @pytest.mark.parametrize("shape", ENGINE_SHAPES)
    def test_rejection_pairs_with_one_abort(self, shape):
        engine = create_engine(
            _bounded_db(), "esr", record_history=True, **shape
        )
        try:
            _run_mixed_load(engine)
            events = HistoryLog.from_engine(engine).events
            rejected = [e for e in events if e.kind == EVENT_REJECT]
            assert len(rejected) == 1
            assert rejected[0].reason in REJECTION_REASONS
            aborts = [
                e
                for e in events
                if e.kind == EVENT_ABORT and e.txn == rejected[0].txn
            ]
            assert len(aborts) == 1
            assert aborts[0].reason == rejected[0].reason
        finally:
            close = getattr(engine, "close", None)
            if close:
                close()


class TestRecorderBasics:
    def test_disabled_recorder_keeps_metrics_but_no_events(self):
        engine = create_engine(_bounded_db(), "esr")
        _run_mixed_load(engine)
        assert engine.metrics.snapshot().commits == 3
        assert HistoryLog.from_engine(engine).events == []

    def test_roundtrip_is_exact(self):
        engine = create_engine(_bounded_db(), "esr", record_history=True)
        _run_mixed_load(engine)
        log = HistoryLog.from_engine(engine)
        assert len(log) > 0
        again = HistoryLog.loads(log.dumps())
        assert again.header == log.header
        assert again.events == log.events

    def test_save_and_load(self, tmp_path):
        engine = create_engine(_bounded_db(), "esr", record_history=True)
        _run_mixed_load(engine)
        log = HistoryLog.from_engine(engine)
        path = tmp_path / "history.jsonl"
        log.save(str(path))
        assert HistoryLog.load(str(path)).events == log.events

    def test_default_abort_reason_is_client_abort(self):
        engine = create_engine(_bounded_db(), "esr", record_history=True)
        txn = engine.begin("update")
        engine.abort(txn)
        events = HistoryLog.from_engine(engine).events
        assert events[-1].kind == EVENT_ABORT
        assert events[-1].reason == REASON_CLIENT_ABORT

    def test_reset_clears_events_and_metrics_together(self):
        engine = create_engine(_bounded_db(), "esr", record_history=True)
        _run_mixed_load(engine)
        engine.recorder.reset()
        assert HistoryLog.from_engine(engine).events == []
        assert engine.metrics.snapshot().commits == 0
        # Recording continues after the reset.
        txn = engine.begin("update")
        engine.commit(txn)
        assert len(HistoryLog.from_engine(engine).events) == 2

    def test_sharded_events_carry_shard_ids(self):
        engine = create_engine(
            _bounded_db(), "esr", shards=2, record_history=True
        )
        t1 = engine.begin("update")
        engine.write(t1, 0, 1.0)  # shard 0
        engine.write(t1, 1, 2.0)  # shard 1
        engine.commit(t1)
        shards = {
            e.shard
            for e in HistoryLog.from_engine(engine).events
            if e.kind == "write"
        }
        assert shards == {0, 1}
