"""The ESR-enhanced decisions: the paper's three relaxation cases."""

from __future__ import annotations

import pytest

from repro.core.bounds import TransactionBounds
from repro.core.hierarchy import GroupCatalog
from repro.engine.esr import esr_read_decision, esr_write_decision
from repro.engine.objects import DataObject
from repro.engine.results import (
    CASE_LATE_READ,
    CASE_LATE_WRITE,
    CASE_READ_UNCOMMITTED,
    Granted,
    MustWait,
    Rejected,
)
from repro.engine.timestamps import Timestamp
from repro.engine.transactions import TransactionKind, TransactionState


def ts(t: float) -> Timestamp:
    return Timestamp(t, 0, 0)


def make_txn(
    kind: str, when: float, til: float = 0.0, tel: float = 0.0, txn_id: int = 1
) -> TransactionState:
    return TransactionState(
        transaction_id=txn_id,
        kind=TransactionKind(kind),
        timestamp=ts(when),
        bounds=TransactionBounds(import_limit=til, export_limit=tel),
        catalog=GroupCatalog(),
    )


def committed_write(obj: DataObject, writer: int, when: float, value: float):
    obj.stage_write(writer, ts(when), value)
    obj.commit_write()


class TestCase1LateRead:
    """A query read older than the last committed write."""

    def test_admitted_within_bounds(self):
        obj = DataObject(1, 5_000.0)
        committed_write(obj, 9, 20, 5_400.0)
        query = make_txn("query", 10, til=1_000.0)
        outcome = esr_read_decision(obj, query)
        # proper value for ts=10 is the initial 5000, present is 5400.
        assert outcome == Granted(
            value=5_400.0, inconsistency=400.0, esr_case=CASE_LATE_READ
        )
        assert query.account.total == 400.0

    def test_rejected_past_til(self):
        obj = DataObject(1, 5_000.0)
        committed_write(obj, 9, 20, 5_400.0)
        query = make_txn("query", 10, til=300.0)
        outcome = esr_read_decision(obj, query)
        assert isinstance(outcome, Rejected)
        assert outcome.reason == "bound-violation"
        assert query.account.total == 0.0

    def test_rejected_past_oil(self):
        from repro.core.bounds import ObjectBounds

        obj = DataObject(1, 5_000.0, ObjectBounds(import_limit=100.0))
        committed_write(obj, 9, 20, 5_400.0)
        query = make_txn("query", 10, til=1_000_000.0)
        outcome = esr_read_decision(obj, query)
        assert isinstance(outcome, Rejected)
        assert outcome.violated_level == "object"

    def test_per_transaction_oil_override(self):
        from repro.core.bounds import ObjectBounds

        obj = DataObject(1, 5_000.0, ObjectBounds(import_limit=100.0))
        committed_write(obj, 9, 20, 5_400.0)
        query = make_txn("query", 10, til=1_000_000.0)
        query.object_limits[1] = 500.0  # override the server-side OIL
        outcome = esr_read_decision(obj, query)
        assert isinstance(outcome, Granted)

    def test_zero_divergence_is_not_inconsistent(self):
        obj = DataObject(1, 5_000.0)
        committed_write(obj, 9, 20, 5_000.0)  # same value rewritten
        query = make_txn("query", 10, til=0.0)
        outcome = esr_read_decision(obj, query)
        assert isinstance(outcome, Granted)
        assert outcome.esr_case is None
        assert outcome.inconsistency == 0.0

    def test_proper_value_uses_version_list(self):
        obj = DataObject(1, 1_000.0)
        committed_write(obj, 2, 5, 2_000.0)
        committed_write(obj, 3, 20, 9_000.0)
        query = make_txn("query", 10, til=100_000.0)
        outcome = esr_read_decision(obj, query)
        # proper for ts=10 is the write at ts=5 (2000), present is 9000.
        assert outcome.inconsistency == 7_000.0


class TestCase1RejectionDetail:
    """Regression: the Case-1 rejection detail must never mention None.

    A rejected admit normally names the violated level, but an account
    that rejects without attributing a level (``violated_level is None``)
    used to produce the detail "past the None limit".  That path must
    instead report a plain late read with the timestamps involved.
    """

    def _late_read_setup(self):
        obj = DataObject(1, 5_000.0)
        committed_write(obj, 9, 20, 5_400.0)
        query = make_txn("query", 10, til=300.0)
        return obj, query

    def test_bound_violation_detail_names_the_level(self):
        obj, query = self._late_read_setup()
        outcome = esr_read_decision(obj, query)
        assert isinstance(outcome, Rejected)
        assert outcome.reason == "bound-violation"
        assert outcome.violated_level is not None
        assert f"past the {outcome.violated_level} limit" in outcome.detail
        assert "None" not in outcome.detail

    def test_unattributed_rejection_reports_late_read(self, monkeypatch):
        from repro.core.hierarchy import ChargeOutcome

        obj, query = self._late_read_setup()
        monkeypatch.setattr(
            query.account,
            "admit",
            lambda *args, **kwargs: ChargeOutcome(admitted=False),
        )
        outcome = esr_read_decision(obj, query)
        assert isinstance(outcome, Rejected)
        assert outcome.reason == "late-read"
        assert outcome.violated_level is None
        assert "read ts" in outcome.detail
        assert "object 1" in outcome.detail
        assert "None" not in outcome.detail


class TestCase2ReadUncommitted:
    """A query read of a pending uncommitted write."""

    def test_admitted_within_bounds(self):
        obj = DataObject(1, 5_000.0)
        obj.stage_write(9, ts(5), 5_300.0)
        query = make_txn("query", 10, til=1_000.0)
        outcome = esr_read_decision(obj, query)
        assert outcome == Granted(
            value=5_300.0, inconsistency=300.0, esr_case=CASE_READ_UNCOMMITTED
        )

    def test_bound_violation_falls_back_to_wait(self):
        obj = DataObject(1, 5_000.0)
        obj.stage_write(9, ts(5), 9_999.0)
        query = make_txn("query", 10, til=10.0)
        outcome = esr_read_decision(obj, query)
        assert outcome == MustWait(blocking_transaction=9)

    def test_bound_violation_on_late_read_rejects(self):
        obj = DataObject(1, 5_000.0)
        obj.stage_write(9, ts(20), 9_999.0)
        query = make_txn("query", 10, til=10.0)
        outcome = esr_read_decision(obj, query)
        assert isinstance(outcome, Rejected)

    def test_proper_value_excludes_the_pending_write(self):
        obj = DataObject(1, 5_000.0)
        committed_write(obj, 2, 5, 6_000.0)
        obj.stage_write(9, ts(8), 8_000.0)
        query = make_txn("query", 10, til=100_000.0)
        outcome = esr_read_decision(obj, query)
        # proper = committed 6000 (ts 5 < 10); present = staged 8000.
        assert outcome.inconsistency == 2_000.0

    def test_update_reads_are_never_relaxed(self):
        obj = DataObject(1, 5_000.0)
        obj.stage_write(9, ts(5), 5_300.0)
        update = make_txn("update", 10, tel=1_000_000.0, txn_id=2)
        outcome = esr_read_decision(obj, update)
        assert outcome == MustWait(blocking_transaction=9)

    def test_reading_own_write(self):
        obj = DataObject(1, 5_000.0)
        obj.stage_write(3, ts(10), 7_777.0)
        update = make_txn("update", 10, txn_id=3)
        assert esr_read_decision(obj, update) == Granted(value=7_777.0)


class TestCase2RejectionDetail:
    """Regression: a Case-2 rejection must identify the blocking writer.

    The detail used to stop at the violated level; diagnosing *why* a
    query was rejected needs the uncommitted writer's transaction id and
    how far its staged value has diverged from the committed one.
    """

    def _rejected(self):
        obj = DataObject(1, 5_000.0)
        committed_write(obj, 2, 15, 7_000.0)
        obj.stage_write(9, ts(20), 8_000.0)
        query = make_txn("query", 10, til=10.0)
        outcome = esr_read_decision(obj, query)
        assert isinstance(outcome, Rejected)
        return outcome

    def test_detail_names_the_writer_transaction(self):
        outcome = self._rejected()
        assert "uncommitted write by transaction 9" in outcome.detail

    def test_detail_reports_the_uncommitted_delta(self):
        # Inconsistency carried is |8000 - proper(10)| = 3000 but the
        # writer's own uncommitted delta is |8000 - 7000| = 1000; the
        # detail must report both, distinctly.
        outcome = self._rejected()
        assert "inconsistency 3000" in outcome.detail
        assert "delta 1000" in outcome.detail

    def test_detail_names_level_and_object(self):
        outcome = self._rejected()
        assert "object 1" in outcome.detail
        assert f"past the {outcome.violated_level} limit" in outcome.detail
        assert "None" not in outcome.detail


class TestCase3LateWrite:
    """An update write older than a query read's timestamp."""

    def _setup(self, til_reader_proper: float = 5_000.0) -> DataObject:
        obj = DataObject(1, til_reader_proper)
        # A query with a newer timestamp has read the object.
        obj.record_read(50, ts(20), True, til_reader_proper)
        return obj

    def test_admitted_within_bounds(self):
        obj = self._setup()
        update = make_txn("update", 10, tel=1_000.0, txn_id=2)
        outcome = esr_write_decision(obj, update, 5_400.0)
        assert outcome == Granted(inconsistency=400.0, esr_case=CASE_LATE_WRITE)
        assert update.account.total == 400.0

    def test_export_is_max_over_readers(self):
        obj = DataObject(1, 5_000.0)
        obj.record_read(50, ts(20), True, 5_000.0)
        obj.record_read(51, ts(21), True, 4_000.0)
        update = make_txn("update", 10, tel=10_000.0, txn_id=2)
        outcome = esr_write_decision(obj, update, 5_500.0)
        assert outcome.inconsistency == 1_500.0  # max(500, 1500)

    def test_sum_policy(self):
        obj = DataObject(1, 5_000.0)
        obj.record_read(50, ts(20), True, 5_000.0)
        obj.record_read(51, ts(21), True, 4_000.0)
        update = make_txn("update", 10, tel=10_000.0, txn_id=2)
        outcome = esr_write_decision(obj, update, 5_500.0, export_policy="sum")
        assert outcome.inconsistency == 2_000.0

    def test_rejected_past_tel(self):
        obj = self._setup()
        update = make_txn("update", 10, tel=100.0, txn_id=2)
        outcome = esr_write_decision(obj, update, 5_400.0)
        assert isinstance(outcome, Rejected)
        assert outcome.reason == "bound-violation"

    def test_rejected_past_oel(self):
        from repro.core.bounds import ObjectBounds

        obj = DataObject(1, 5_000.0, ObjectBounds(export_limit=100.0))
        obj.record_read(50, ts(20), True, 5_000.0)
        update = make_txn("update", 10, tel=1_000_000.0, txn_id=2)
        outcome = esr_write_decision(obj, update, 5_400.0)
        assert isinstance(outcome, Rejected)
        assert outcome.violated_level == "object"

    def test_not_relaxed_when_last_reader_was_update(self):
        obj = DataObject(1, 5_000.0)
        obj.record_read(50, ts(20), False, 5_000.0)
        update = make_txn("update", 10, tel=1_000_000.0, txn_id=2)
        outcome = esr_write_decision(obj, update, 5_400.0)
        assert isinstance(outcome, Rejected)
        assert outcome.reason == "late-write"

    def test_committed_readers_export_nothing(self):
        # rts is newer but the reader registry is empty (query committed):
        # per the paper, export is measured against *uncommitted* readers.
        obj = DataObject(1, 5_000.0)
        obj.record_read(50, ts(20), True, 5_000.0)
        obj.forget_reader(50)
        update = make_txn("update", 10, tel=0.0, txn_id=2)
        outcome = esr_write_decision(obj, update, 9_999.0)
        assert isinstance(outcome, Granted)
        assert outcome.inconsistency == 0.0

    def test_write_write_conflicts_never_relaxed(self):
        obj = DataObject(1, 5_000.0)
        obj.stage_write(9, ts(5), 6_000.0)
        update = make_txn("update", 10, tel=1_000_000.0, txn_id=2)
        assert esr_write_decision(obj, update, 7_000.0) == MustWait(9)
        late = make_txn("update", 2, tel=1_000_000.0, txn_id=3)
        assert isinstance(esr_write_decision(obj, late, 7_000.0), Rejected)

    def test_write_late_wrt_committed_write_rejected(self):
        obj = DataObject(1, 5_000.0)
        committed_write(obj, 9, 20, 6_000.0)
        update = make_txn("update", 10, tel=1_000_000.0, txn_id=2)
        assert isinstance(esr_write_decision(obj, update, 7_000.0), Rejected)

    def test_in_order_write_granted_without_charge(self):
        obj = DataObject(1, 5_000.0)
        obj.record_read(50, ts(5), True, 5_000.0)
        update = make_txn("update", 10, tel=0.0, txn_id=2)
        outcome = esr_write_decision(obj, update, 9_999.0)
        assert outcome == Granted()
