"""Timestamp ordering and generation."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.engine.timestamps import GENESIS, Timestamp, TimestampGenerator


class TestTimestamp:
    def test_total_order_by_ticks_first(self):
        assert Timestamp(1, 9, 9) < Timestamp(2, 0, 0)

    def test_site_breaks_ties(self):
        assert Timestamp(5, 1, 0) < Timestamp(5, 2, 0)

    def test_seq_breaks_remaining_ties(self):
        assert Timestamp(5, 1, 1) < Timestamp(5, 1, 2)

    def test_genesis_older_than_everything(self):
        assert GENESIS < Timestamp(-1e30, -1, 0)

    def test_str_is_compact(self):
        assert str(Timestamp(5.0, 2, 3)) == "5@2.3"

    @given(
        st.tuples(st.floats(-1e9, 1e9, allow_nan=False), st.integers(0, 99), st.integers(0, 99)),
        st.tuples(st.floats(-1e9, 1e9, allow_nan=False), st.integers(0, 99), st.integers(0, 99)),
    )
    def test_trichotomy(self, a, b):
        ta, tb = Timestamp(*a), Timestamp(*b)
        assert (ta < tb) + (ta == tb) + (ta > tb) == 1


class TestTimestampGenerator:
    def test_strictly_increasing_without_clock(self):
        gen = TimestampGenerator(site=1)
        stamps = [gen.next() for _ in range(100)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 100

    def test_unique_under_stalled_clock(self):
        gen = TimestampGenerator(site=1, clock=lambda: 42.0)
        stamps = [gen.next() for _ in range(10)]
        assert len(set(stamps)) == 10
        assert stamps == sorted(stamps)

    def test_clock_stepping_backwards_is_clamped(self):
        readings = iter([100.0, 50.0, 120.0])
        gen = TimestampGenerator(site=1, clock=lambda: next(readings))
        t1 = gen.next()
        t2 = gen.next()
        t3 = gen.next()
        assert t1 < t2 < t3
        assert t2.ticks == 100.0  # clamped, not 50

    def test_distinct_sites_never_collide(self):
        gen_a = TimestampGenerator(site=1, clock=lambda: 7.0)
        gen_b = TimestampGenerator(site=2, clock=lambda: 7.0)
        stamps = {gen_a.next() for _ in range(5)} | {
            gen_b.next() for _ in range(5)
        }
        assert len(stamps) == 10

    def test_repr(self):
        gen = TimestampGenerator(site=3)
        gen.next()
        assert "site=3" in repr(gen)
