"""The metrics collector and its snapshots."""

from __future__ import annotations

from repro.engine.metrics import MetricsCollector
from repro.engine.results import CASE_LATE_READ, CASE_READ_UNCOMMITTED


class TestMetricsCollector:
    def test_reads_and_cases(self):
        metrics = MetricsCollector()
        metrics.record_read(None)
        metrics.record_read(CASE_LATE_READ)
        metrics.record_read(CASE_READ_UNCOMMITTED)
        assert metrics.reads == 3
        assert metrics.inconsistent_operations == 2
        assert metrics.inconsistent_by_case[CASE_LATE_READ] == 1

    def test_total_operations(self):
        metrics = MetricsCollector()
        metrics.record_read(None)
        metrics.record_write(None)
        metrics.record_write(None)
        assert metrics.total_operations == 3

    def test_commit_bookkeeping(self):
        metrics = MetricsCollector()
        metrics.record_commit(True, imported=120.0, exported=0.0)
        metrics.record_commit(False, imported=0.0, exported=30.0)
        snapshot = metrics.snapshot()
        assert snapshot.commits == 2
        assert snapshot.commits_query == 1
        assert snapshot.commits_update == 1
        assert snapshot.total_imported == 120.0
        assert snapshot.total_exported == 30.0

    def test_abort_reasons(self):
        metrics = MetricsCollector()
        metrics.record_abort("late-read")
        metrics.record_abort("late-read")
        metrics.record_abort("bound-violation")
        snapshot = metrics.snapshot()
        assert snapshot.aborts == 3
        assert snapshot.aborts_by_reason == {
            "late-read": 2,
            "bound-violation": 1,
        }

    def test_snapshot_is_detached(self):
        metrics = MetricsCollector()
        metrics.record_read(None)
        snapshot = metrics.snapshot()
        metrics.record_read(None)
        assert snapshot.reads == 1
        assert metrics.reads == 2

    def test_derived_ratios(self):
        metrics = MetricsCollector()
        for _ in range(4):
            metrics.record_read(None)
        metrics.record_commit(True, 0, 0)
        metrics.record_commit(True, 0, 0)
        metrics.record_abort("x")
        snapshot = metrics.snapshot()
        assert snapshot.operations_per_commit == 2.0
        assert snapshot.abort_rate == 0.5

    def test_ratios_with_zero_commits(self):
        snapshot = MetricsCollector().snapshot()
        assert snapshot.operations_per_commit == 0.0
        assert snapshot.abort_rate == 0.0

    def test_reset(self):
        metrics = MetricsCollector()
        metrics.record_read(None)
        metrics.record_wait()
        metrics.record_rejection()
        metrics.reset()
        snapshot = metrics.snapshot()
        assert snapshot.reads == 0
        assert snapshot.waits == 0
        assert snapshot.rejected_operations == 0
