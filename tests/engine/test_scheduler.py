"""The wait registry."""

from __future__ import annotations

import pytest

from repro.engine.scheduler import WaitRegistry


class TestWaitRegistry:
    def test_fire_invokes_and_drains(self):
        registry = WaitRegistry()
        calls = []
        registry.subscribe(7, lambda: calls.append("a"))
        registry.subscribe(7, lambda: calls.append("b"))
        assert registry.fire(7) == 2
        assert calls == ["a", "b"]
        assert registry.fire(7) == 0  # drained

    def test_fire_unknown_is_noop(self):
        assert WaitRegistry().fire(99) == 0

    def test_waiting_on_introspection(self):
        registry = WaitRegistry()
        registry.subscribe(7, lambda: None, waiter_transaction=3)
        assert registry.waiting_on(3) == 7
        registry.fire(7)
        assert registry.waiting_on(3) is None

    def test_fire_clears_the_completed_waiters_own_entry(self):
        # Regression: a blocked transaction that itself completes (e.g.
        # aborted on wait-timeout) used to leave its _waiting_on entry
        # behind forever.
        registry = WaitRegistry()
        registry.subscribe(7, lambda: None, waiter_transaction=3)
        registry.fire(3)  # the *waiter* completes, not the blocker
        assert registry.waiting_on(3) is None
        # The blocker's completion still works and finds nothing stale.
        registry.fire(7)
        assert registry.waiting_on(3) is None

    def test_pending_waiters_count(self):
        registry = WaitRegistry()
        registry.subscribe(1, lambda: None)
        registry.subscribe(2, lambda: None)
        registry.subscribe(2, lambda: None)
        assert registry.pending_waiters() == 3

    def test_callback_may_resubscribe(self):
        registry = WaitRegistry()
        calls = []

        def chain():
            calls.append("first")
            registry.subscribe(8, lambda: calls.append("second"))

        registry.subscribe(7, chain)
        registry.fire(7)
        registry.fire(8)
        assert calls == ["first", "second"]

    def test_acyclic_wait_chain_passes(self):
        registry = WaitRegistry()
        registry.subscribe(2, lambda: None, waiter_transaction=3)
        registry.subscribe(1, lambda: None, waiter_transaction=2)
        registry.assert_no_cycle()

    def test_cycle_detection(self):
        registry = WaitRegistry()
        registry.subscribe(2, lambda: None, waiter_transaction=1)
        registry.subscribe(1, lambda: None, waiter_transaction=2)
        with pytest.raises(AssertionError, match="cycle"):
            registry.assert_no_cycle()

    def test_repr(self):
        registry = WaitRegistry()
        registry.subscribe(1, lambda: None)
        assert "pending=1" in repr(registry)
