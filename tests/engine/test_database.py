"""The in-memory database and its startup file format."""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import ObjectBounds
from repro.engine.database import Database
from repro.errors import SpecificationError, UnknownObjectError


class TestPopulation:
    def test_create_and_get(self):
        db = Database()
        db.create_object(1, 100.0)
        assert db.get(1).committed_value == 100.0
        assert 1 in db
        assert len(db) == 1

    def test_duplicate_id_rejected(self):
        db = Database()
        db.create_object(1, 100.0)
        with pytest.raises(SpecificationError):
            db.create_object(1, 200.0)

    def test_unknown_object(self):
        with pytest.raises(UnknownObjectError):
            Database().get(404)

    def test_create_many(self):
        db = Database()
        db.create_many(((i, float(i)) for i in range(5)))
        assert len(db) == 5
        assert sorted(db.object_ids()) == [0, 1, 2, 3, 4]

    def test_create_with_group(self):
        db = Database()
        db.catalog.add_group("hot")
        db.create_object(1, 0.0, group="hot")
        assert db.catalog.group_of(1) == "hot"

    def test_snapshot_and_total(self):
        db = Database()
        db.create_many([(1, 10.0), (2, 20.0)])
        assert db.committed_snapshot() == {1: 10.0, 2: 20.0}
        assert db.total_committed_value() == 30.0


class TestStartupFile:
    def test_round_trip(self, tmp_path):
        db = Database()
        db.catalog.add_group("company")
        db.catalog.add_group("com1", parent="company")
        db.create_object(1, 5_000.0, ObjectBounds(100.0, 50.0), group="com1")
        db.create_object(2, 6_000.0)
        path = tmp_path / "startup.db"
        db.write_startup_file(path)

        loaded = Database.from_startup_file(path)
        assert loaded.committed_snapshot() == db.committed_snapshot()
        assert loaded.get(1).bounds == ObjectBounds(100.0, 50.0)
        assert math.isinf(loaded.get(2).bounds.import_limit)
        assert loaded.catalog.path(1) == ("com1", "company", "<transaction>")

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "s.db"
        path.write_text("# header\n\n1 100\n2 200 inf inf\n", encoding="utf-8")
        db = Database.from_startup_file(path)
        assert len(db) == 2

    def test_group_lines(self, tmp_path):
        path = tmp_path / "s.db"
        path.write_text(
            "group company\ngroup com1 company\n1 100 inf inf com1\n",
            encoding="utf-8",
        )
        db = Database.from_startup_file(path)
        assert db.catalog.parent_of("com1") == "company"
        assert db.catalog.group_of(1) == "com1"

    def test_bad_line_reports_position(self, tmp_path):
        path = tmp_path / "s.db"
        path.write_text("1 abc\n", encoding="utf-8")
        with pytest.raises(SpecificationError, match="s.db:1"):
            Database.from_startup_file(path)

    def test_bad_group_line(self, tmp_path):
        path = tmp_path / "s.db"
        path.write_text("group a b c d\n", encoding="utf-8")
        with pytest.raises(SpecificationError):
            Database.from_startup_file(path)
