"""Chaos harness smoke: faults injected, history still conformant."""

from __future__ import annotations

import pytest

from repro.check import ChaosConfig, check_log, run_chaos
from repro.engine.procshard import process_sharding_unavailable


class TestChaosSmoke:
    def test_threaded_server_with_disconnects(self):
        config = ChaosConfig(
            clients=2,
            transactions_per_client=8,
            server="threaded",
            disconnect_rate=0.2,
            seed=5,
        )
        report = run_chaos(config)
        assert report.ok, (report.errors, report.check.violations)
        assert report.commits > 0
        assert len(report.history) > 0
        # The same history replays clean from its serialised form too.
        from repro.engine.history import HistoryLog

        again = HistoryLog.loads(report.history.dumps())
        assert check_log(again).ok

    def test_async_server_with_bursts(self):
        config = ChaosConfig(
            clients=2,
            transactions_per_client=8,
            server="async",
            burst_rate=0.5,
            seed=6,
        )
        report = run_chaos(config)
        assert report.ok, (report.errors, report.check.violations)
        assert report.commits > 0

    @pytest.mark.skipif(
        process_sharding_unavailable() == "no-fork",
        reason="process sharding needs the fork start method",
    )
    def test_worker_kill_leaves_history_conformant(self):
        config = ChaosConfig(
            clients=2,
            transactions_per_client=10,
            server="async",
            shards=2,
            processes="force",
            kill_workers=1,
            seed=7,
        )
        report = run_chaos(config)
        assert report.kills == 1
        assert report.ok, (report.errors, report.check.violations)

    def test_unknown_server_kind_is_rejected(self):
        with pytest.raises(ValueError):
            run_chaos(ChaosConfig(server="carrier-pigeon"))
