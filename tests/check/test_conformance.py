"""The offline conformance checker against real and corrupted histories."""

from __future__ import annotations

import dataclasses

import pytest

from repro.check import (
    check_log,
    render_report,
    serialization_cycle,
)
from repro.core.bounds import ObjectBounds, TransactionBounds
from repro.engine.api import create_engine
from repro.engine.database import Database
from repro.engine.history import (
    EVENT_READ,
    EVENT_WRITE,
    HistoryEvent,
    HistoryLog,
)
from repro.sim.system import SimulationConfig, run_simulation


def _bounded_db(n: int = 8) -> Database:
    db = Database()
    db.create_many(
        ((i, 100.0 * (i + 1)) for i in range(n)),
        bounds=ObjectBounds(import_limit=1e9, export_limit=1e9),
    )
    return db


def _recorded_run(**engine_kwargs) -> HistoryLog:
    engine = create_engine(
        _bounded_db(), "esr", record_history=True, **engine_kwargs
    )
    try:
        for round_index in range(4):
            writer = engine.begin("update", TransactionBounds(0.0, 500.0))
            engine.write(writer, round_index, 50.0 + round_index)
            engine.write(writer, round_index + 4, 60.0 + round_index)
            reader = engine.begin("query", TransactionBounds(500.0, 0.0))
            engine.read(reader, round_index)  # uncommitted: charged
            engine.commit(writer)
            engine.read(reader, round_index + 4)  # late: charged
            engine.commit(reader)
        return HistoryLog.from_engine(engine)
    finally:
        close = getattr(engine, "close", None)
        if close:
            close()


class TestCleanHistories:
    def test_bare_engine_history_is_conformant(self):
        result = check_log(_recorded_run(), name="bare")
        assert result.ok, result.violations
        assert result.committed == 8
        assert result.warnings == []

    def test_sharded_history_is_conformant(self):
        result = check_log(_recorded_run(shards=2), name="sharded")
        assert result.ok, result.violations

    def test_strict_history_is_conformant_and_serializable(self):
        engine = create_engine(_bounded_db(), "sr", record_history=True)
        t1 = engine.begin("update")
        engine.write(t1, 0, 1.0)
        engine.commit(t1)
        q = engine.begin("query")
        engine.read(q, 0)
        engine.commit(q)
        result = check_log(HistoryLog.from_engine(engine))
        assert result.ok
        assert result.serializable is True
        assert result.label == "Conformant, serializable"


class TestCorruptedHistories:
    def test_inflated_charge_is_flagged_at_a_level(self):
        log = _recorded_run()
        index, event = next(
            (i, e)
            for i, e in enumerate(log.events)
            if e.kind == EVENT_READ and e.inconsistency > 0.0
        )
        log.events[index] = dataclasses.replace(event, inconsistency=1e12)
        result = check_log(log, name="corrupted")
        kinds = {v.kind for v in result.violations}
        assert "over-limit-charge" in kinds
        assert "commit-total-mismatch" in kinds
        over = next(
            v for v in result.violations if v.kind == "over-limit-charge"
        )
        assert over.level is not None

    def test_one_ulp_commit_total_drift_is_caught(self):
        log = _recorded_run()
        index, event = next(
            (i, e)
            for i, e in enumerate(log.events)
            if e.kind == "commit" and (e.imported or 0.0) > 0.0
        )
        nudged = dataclasses.replace(
            event,
            imported=float(event.imported)
            + abs(float(event.imported)) * 2**-52,
        )
        log.events[index] = nudged
        result = check_log(log, name="drift")
        assert any(
            v.kind == "commit-total-mismatch" for v in result.violations
        )

    def test_spliced_event_for_unknown_transaction(self):
        log = _recorded_run()
        log.events.append(
            HistoryEvent(kind=EVENT_WRITE, txn=10_000, wall=0.0, object_id=0)
        )
        result = check_log(log, name="orphan")
        assert any(v.kind == "orphan-event" for v in result.violations)


class TestSerializationGraph:
    def _event(self, kind, txn, object_id=None):
        return HistoryEvent(kind=kind, txn=txn, wall=0.0, object_id=object_id)

    def test_write_skew_cycle_is_found(self):
        # T1 reads y, writes x; T2 reads x, writes y — classic write skew.
        events = [
            self._event("begin", 1),
            self._event("begin", 2),
            self._event("read", 1, 2),
            self._event("read", 2, 1),
            self._event("write", 1, 1),
            self._event("write", 2, 2),
            self._event("commit", 1),
            self._event("commit", 2),
        ]
        cycle = serialization_cycle(events)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {1, 2}

    def test_serial_history_is_acyclic(self):
        events = [
            self._event("begin", 1),
            self._event("write", 1, 1),
            self._event("commit", 1),
            self._event("begin", 2),
            self._event("read", 2, 1),
            self._event("write", 2, 2),
            self._event("commit", 2),
        ]
        assert serialization_cycle(events) is None

    def test_aborted_transactions_carry_no_dependencies(self):
        events = [
            self._event("begin", 1),
            self._event("write", 1, 1),
            self._event("abort", 1),
            self._event("begin", 2),
            self._event("read", 2, 1),
            self._event("commit", 2),
        ]
        assert serialization_cycle(events) is None


class TestSimulatorHistories:
    def test_simulated_history_is_conformant(self):
        config = SimulationConfig(
            mpl=3,
            til=500.0,
            tel=500.0,
            transactions_per_client=10,
            record_history=True,
        )
        result = run_simulation(config)
        assert result.history is not None
        check = check_log(result.history, name="sim")
        assert check.ok, check.violations
        assert check.committed == result.commits

    def test_history_off_by_default(self):
        config = SimulationConfig(mpl=2, transactions_per_client=5)
        assert run_simulation(config).history is None

    def test_snapshot_cache_reads_are_conformant(self):
        config = SimulationConfig(
            mpl=3,
            til=500.0,
            tel=500.0,
            transactions_per_client=10,
            snapshot_cache=True,
            record_history=True,
        )
        result = run_simulation(config)
        history = result.history
        assert history is not None
        check = check_log(history, name="snapshot-cache")
        assert check.ok, check.violations


class TestReport:
    def test_report_layout(self):
        good = check_log(_recorded_run(), name="clean")
        log = _recorded_run()
        index, event = next(
            (i, e)
            for i, e in enumerate(log.events)
            if e.kind == EVENT_READ and e.inconsistency > 0.0
        )
        log.events[index] = dataclasses.replace(event, inconsistency=1e12)
        bad = check_log(log, name="corrupt")
        report = render_report([good, bad])
        assert "|History|Result|CPU(s)|Valid?|" in report
        assert "| `clean` |Conformant|" in report
        assert "✅" in report and "❌" in report
        assert "## Summary" in report
        assert "- Conformant: 1" in report
        assert "## Violations" in report
        assert "[over-limit-charge]" in report
