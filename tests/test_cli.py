"""The command-line interface."""

from __future__ import annotations

import threading

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "fig7", "--fast"])
        assert args.name == "fig7"
        assert args.fast


class TestTable1:
    def test_prints_paper_table(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "high-epsilon" in out
        assert "100,000" in out
        assert "zero-epsilon" in out


class TestSweep:
    def test_runs_one_configuration(self, capsys):
        code = main(
            [
                "sweep",
                "--mpl",
                "2",
                "--level",
                "high",
                "--duration",
                "4000",
                "--warmup",
                "500",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput (tx/s)" in out

    def test_explicit_bounds(self, capsys):
        assert main(["sweep", "--mpl", "1", "--duration", "3000"]) == 0
        assert "aborts" in capsys.readouterr().out

    def test_profile_flag_prints_profile_and_counters(self, capsys):
        code = main(
            [
                "sweep",
                "--mpl",
                "1",
                "--duration",
                "2000",
                "--warmup",
                "200",
                "--profile",
                "--profile-top",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cumulative" in out
        assert "perf counters:" in out
        assert "events dispatched" in out
        assert "throughput (tx/s)" in out


class TestBenchHotpath:
    def test_quick_mode_never_writes_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_hotpath.json"
        code = main(["bench-hotpath", "--quick", "--baseline", str(baseline)])
        assert code == 0
        assert not baseline.exists()
        out = capsys.readouterr().out
        assert "smoke_figure" in out

    def test_writes_then_compares_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_hotpath.json"
        assert main(
            ["bench-hotpath", "--repeats", "1", "--baseline", str(baseline)]
        ) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(
            ["bench-hotpath", "--repeats", "1", "--baseline", str(baseline)]
        ) == 0
        out = capsys.readouterr().out
        assert "vs. baseline" in out
        assert "speedup" in out


class TestGenWorkload:
    def test_writes_trace(self, tmp_path, capsys):
        out_file = tmp_path / "load.trace"
        code = main(["gen-workload", str(out_file), "--count", "7"])
        assert code == 0
        assert "wrote 7 transactions" in capsys.readouterr().out
        from repro.workload.trace import read_trace

        assert len(read_trace(out_file)) == 7


class TestFigure:
    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_table1_style_figure_runs_fast(self, capsys):
        # The cheapest real figure at a tiny duration; still end-to-end.
        code = main(
            [
                "figure",
                "fig11",
                "--duration",
                "2500",
                "--reps",
                "1",
                "--no-chart",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TEL=" in out


class TestServeAndRunTrace:
    def test_round_trip_over_tcp(self, tmp_path, capsys):
        from repro.engine.database import Database
        from repro.net.server import TransactionServer

        # Generate a small trace against the paper id space.
        trace = tmp_path / "load.trace"
        main(["gen-workload", str(trace), "--count", "3", "--seed", "2"])

        from repro.workload.generator import build_database
        from repro.workload.spec import PAPER_WORKLOAD

        server = TransactionServer(build_database(PAPER_WORKLOAD, seed=0))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            code = main(
                [
                    "run-trace",
                    str(trace),
                    "--port",
                    str(server.port),
                ]
            )
        finally:
            server.shutdown()
            server.server_close()
        assert code == 0
        out = capsys.readouterr().out
        assert "committed 3 transactions" in out
