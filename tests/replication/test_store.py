"""The replicated store's bookkeeping."""

from __future__ import annotations

import pytest

from repro.errors import SpecificationError, UnknownObjectError
from repro.replication.store import ReplicatedStore


@pytest.fixture
def store() -> ReplicatedStore:
    s = ReplicatedStore(n_replicas=2)
    s.create_object(1, 100.0)
    s.create_object(2, 200.0)
    return s


class TestBasics:
    def test_replicas_start_in_sync(self, store):
        for replica in (0, 1):
            assert store.replica_value(1, replica) == 100.0
            assert store.divergence(1, replica) == 0.0

    def test_validation(self, store):
        with pytest.raises(SpecificationError):
            ReplicatedStore(0)
        with pytest.raises(SpecificationError):
            store.create_object(1, 5.0)
        with pytest.raises(UnknownObjectError):
            store.primary_value(404)
        with pytest.raises(SpecificationError):
            store.replica_value(1, 9)

    def test_len_and_ids(self, store):
        assert len(store) == 2
        assert sorted(store.object_ids()) == [1, 2]


class TestDivergence:
    def test_commit_creates_divergence(self, store):
        store.commit_primary(1, 150.0)
        assert store.primary_value(1) == 150.0
        assert store.replica_value(1, 0) == 100.0
        assert store.divergence(1, 0) == 50.0
        assert store.max_divergence(1) == 50.0

    def test_propagate_clears_divergence(self, store):
        store.commit_primary(1, 150.0)
        installed = store.propagate(1, 0)
        assert installed == 150.0
        assert store.divergence(1, 0) == 0.0
        assert store.divergence(1, 1) == 50.0  # other replica still lags

    def test_propagate_all(self, store):
        store.commit_primary(1, 150.0)
        store.commit_primary(2, 260.0)
        store.propagate_all(1)
        assert store.total_divergence(1) == 0.0
        assert store.total_divergence(0) == 110.0

    def test_would_diverge_to(self, store):
        store.propagate(1, 0)
        assert store.would_diverge_to(1, 130.0) == 30.0
        store.commit_primary(1, 150.0)
        store.propagate(1, 0)  # replica 0 at 150, replica 1 at 100
        assert store.would_diverge_to(1, 160.0) == 60.0  # vs replica 1
