"""The replicated-system simulation and its ESR trade-offs."""

from __future__ import annotations

import math

import pytest

from repro.errors import ExperimentError
from repro.replication.system import ReplicationConfig, run_replication

W = 2_000.0


def run(**overrides):
    defaults = dict(
        duration_ms=8_000.0, seed=2, propagation_delay=200.0, n_objects=50
    )
    defaults.update(overrides)
    return run_replication(ReplicationConfig(**defaults))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ExperimentError):
            ReplicationConfig(n_replicas=0)
        with pytest.raises(ExperimentError):
            ReplicationConfig(duration_ms=0)


class TestExportSide:
    def test_zero_epsilon_is_eager_and_exact(self):
        result = run(replica_epsilon=0.0)
        # Every update writes through; queries never see staleness.
        assert result.forced_syncs >= result.updates_committed
        assert result.mean_staleness_per_query == 0.0

    def test_unbounded_epsilon_is_fully_asynchronous(self):
        result = run(replica_epsilon=math.inf)
        assert result.forced_syncs == 0

    def test_update_throughput_monotone_in_epsilon(self):
        tight = run(replica_epsilon=0.0)
        medium = run(replica_epsilon=2 * W)
        loose = run(replica_epsilon=math.inf)
        assert tight.update_throughput <= medium.update_throughput * 1.05
        assert medium.update_throughput <= loose.update_throughput * 1.05

    def test_staleness_grows_with_epsilon(self):
        tight = run(replica_epsilon=0.0)
        loose = run(replica_epsilon=math.inf)
        assert loose.mean_staleness_per_query > tight.mean_staleness_per_query


class TestImportSide:
    def test_zero_oil_reads_are_fresh(self):
        result = run(oil=0.0, til=math.inf)
        assert result.mean_staleness_per_query == 0.0
        assert result.remote_reads > 0

    def test_unbounded_oil_reads_locally(self):
        result = run(oil=math.inf, til=math.inf)
        assert result.local_read_fraction == 1.0

    def test_query_throughput_monotone_in_oil(self):
        tight = run(oil=0.0, til=math.inf)
        loose = run(oil=math.inf, til=math.inf)
        assert loose.query_throughput > tight.query_throughput

    def test_til_caps_total_viewed_staleness(self):
        budget = 3 * W
        result = run(oil=math.inf, til=budget)
        # The per-query average cannot exceed the per-query budget.
        assert result.mean_staleness_per_query <= budget + 1e-9


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run(replica_epsilon=2 * W)
        b = run(replica_epsilon=2 * W)
        assert a == b

    def test_different_seed_differs(self):
        a = run(seed=2)
        b = run(seed=3)
        assert a != b


class TestEngineMirror:
    """The ESR engine mirror meters exported divergence identically
    whether the engine is sharded or not (the simulation is
    single-threaded, so shard routing must be unobservable)."""

    def test_disabled_by_default(self):
        assert run().engine_exported == 0.0

    def test_mirror_meters_exports(self):
        result = run(engine_shards=1, duration_ms=2_000.0)
        assert result.engine_exported > 0.0
        # Every commit exports at least its own write's divergence to
        # the replicas' pinned run-start views, so the metered total
        # dominates zero and scales with committed updates.
        assert result.updates_committed > 0

    def test_sharded_mirror_matches_unsharded(self):
        unsharded = run(engine_shards=1, duration_ms=2_000.0)
        sharded = run(engine_shards=4, duration_ms=2_000.0)
        assert sharded.engine_exported == unsharded.engine_exported
        # The mirror only observes; the simulated outcomes are untouched.
        baseline = run(duration_ms=2_000.0)
        for field in (
            "updates_committed",
            "queries_completed",
            "forced_syncs",
            "local_reads",
            "remote_reads",
            "staleness_viewed",
        ):
            assert getattr(sharded, field) == getattr(baseline, field)
            assert getattr(unsharded, field) == getattr(baseline, field)

    def test_negative_shards_rejected(self):
        with pytest.raises(ExperimentError):
            ReplicationConfig(engine_shards=-1)
