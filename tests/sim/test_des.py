"""The discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.sim.des import Engine, Event, Resource, Timeout


class TestEngineBasics:
    def test_timeouts_advance_time(self):
        engine = Engine()
        log = []

        def process():
            yield Timeout(5.0)
            log.append(engine.now)
            yield Timeout(2.5)
            log.append(engine.now)

        engine.spawn(process())
        engine.run()
        assert log == [5.0, 7.5]

    def test_events_block_until_triggered(self):
        engine = Engine()
        gate = Event()
        log = []

        def waiter():
            yield gate
            log.append(("woke", engine.now))

        def trigger():
            yield Timeout(10.0)
            gate.trigger()

        engine.spawn(waiter())
        engine.spawn(trigger())
        engine.run()
        assert log == [("woke", 10.0)]

    def test_pretriggered_event_resumes_immediately(self):
        engine = Engine()
        gate = Event()
        gate.trigger()
        log = []

        def waiter():
            yield gate
            log.append(engine.now)

        engine.spawn(waiter())
        engine.run()
        assert log == [0.0]

    def test_event_trigger_is_idempotent(self):
        gate = Event()
        gate.trigger()
        gate.trigger()
        assert gate.triggered

    def test_run_until_stops_clock(self):
        engine = Engine()

        def process():
            while True:
                yield Timeout(10.0)

        engine.spawn(process())
        assert engine.run(until=35.0) == 35.0
        assert engine.now == 35.0
        assert engine.pending_events() == 1

    def test_run_until_complete_detects_deadlock(self):
        engine = Engine()
        never = Event()

        def stuck():
            yield never

        process = engine.spawn(stuck())
        with pytest.raises(RuntimeError, match="deadlock"):
            engine.run_until_complete([process])

    def test_completion_event(self):
        engine = Engine()

        def quick():
            yield Timeout(1.0)

        def joiner(target):
            yield target.completed
            log.append(engine.now)

        log = []
        target = engine.spawn(quick())
        engine.spawn(joiner(target))
        engine.run()
        assert log == [1.0]

    def test_deterministic_ordering_at_same_instant(self):
        engine = Engine()
        log = []

        def make(name):
            def process():
                yield Timeout(5.0)
                log.append(name)

            return process()

        for name in ("a", "b", "c"):
            engine.spawn(make(name))
        engine.run()
        assert log == ["a", "b", "c"]  # FIFO among simultaneous events

    def test_zero_delay_interleaves_with_due_heap_events(self):
        """Heap events due *now* run before zero-delay work scheduled now.

        The ready-queue fast path must reproduce the single-heap
        ``(time, seq)`` order: an event scheduled earlier for time T
        precedes a zero-delay callback scheduled while the clock already
        sits at T.
        """
        engine = Engine()
        log = []
        engine.call_later(5.0, lambda: log.append("due"))
        engine.call_later(
            5.0,
            lambda: engine.call_later(0.0, lambda: log.append("spawned")),
        )

        def process():
            yield Timeout(5.0)
            log.append("proc")

        engine.spawn(process())
        engine.run()
        # "due" was heap-scheduled before "proc"'s resume; the zero-delay
        # "spawned" callback was created at t=5 and so runs last.
        assert log == ["due", "proc", "spawned"]

    def test_fastpath_counters_track_dispatch(self):
        engine = Engine()

        def process():
            yield Timeout(1.0)   # heap
            yield Timeout(0.0)   # ready fast path

        engine.spawn(process())  # spawn itself is a fast-path resume
        engine.run()
        assert engine.events_dispatched == 3
        assert engine.fastpath_dispatched == 2

    def test_pending_events_counts_ready_queue(self):
        engine = Engine()
        engine.call_later(0.0, lambda: None)
        engine.call_later(3.0, lambda: None)
        assert engine.pending_events() == 2
        engine.run()
        assert engine.pending_events() == 0

    def test_run_until_leaves_ready_work_for_next_call(self):
        """run(until) past all events still runs zero-delay follow-ups."""
        engine = Engine()
        log = []

        def process():
            yield Timeout(2.0)
            yield Timeout(0.0)
            log.append(engine.now)

        engine.spawn(process())
        engine.run(until=10.0)
        assert log == [2.0]
        assert engine.now == 10.0

    def test_run_until_complete_drains_fast_path(self):
        engine = Engine()

        def chained():
            for _ in range(3):
                yield Timeout(0.0)

        process = engine.spawn(chained())
        engine.run_until_complete([process])
        assert process.completed.triggered
        assert engine.now == 0.0

    def test_bad_yield_type_raises(self):
        engine = Engine()

        def bad():
            yield 42

        engine.spawn(bad())
        with pytest.raises(TypeError, match="expected Timeout or Event"):
            engine.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)
        with pytest.raises(ValueError):
            Engine().call_later(-1.0, lambda: None)


class TestResource:
    def test_serialises_access(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        log = []

        def worker(name):
            yield resource.acquire()
            log.append((name, "start", engine.now))
            yield Timeout(10.0)
            resource.release()
            log.append((name, "end", engine.now))

        engine.spawn(worker("a"))
        engine.spawn(worker("b"))
        engine.run()
        assert log == [
            ("a", "start", 0.0),
            ("a", "end", 10.0),
            ("b", "start", 10.0),
            ("b", "end", 20.0),
        ]

    def test_capacity_two_overlaps(self):
        engine = Engine()
        resource = Resource(engine, capacity=2)
        starts = []

        def worker():
            yield resource.acquire()
            starts.append(engine.now)
            yield Timeout(10.0)
            resource.release()

        for _ in range(3):
            engine.spawn(worker())
        engine.run()
        assert starts == [0.0, 0.0, 10.0]

    def test_fifo_queueing(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        order = []

        def worker(name, arrival):
            yield Timeout(arrival)
            yield resource.acquire()
            order.append(name)
            yield Timeout(5.0)
            resource.release()

        engine.spawn(worker("late", 2.0))
        engine.spawn(worker("later", 3.0))
        engine.spawn(worker("first", 0.0))
        engine.run()
        assert order == ["first", "late", "later"]

    def test_fifo_grant_order_under_interleaved_acquire_release(self):
        """Queued waiters are granted strictly first-come first-served.

        Holders release at staggered times while new requesters keep
        arriving, so grants and fresh acquires interleave; the deque-backed
        queue must still hand units out in arrival order.
        """
        engine = Engine()
        resource = Resource(engine, capacity=2)
        granted = []

        def worker(name, arrival, hold):
            yield Timeout(arrival)
            yield resource.acquire()
            granted.append(name)
            yield Timeout(hold)
            resource.release()

        # Arrival order: a, b (granted at once), then c..g queue up while
        # releases at t=4, 6, 9, ... free units one at a time.
        for name, arrival, hold in [
            ("a", 0.0, 4.0),
            ("b", 1.0, 5.0),
            ("c", 2.0, 5.0),
            ("d", 3.0, 2.0),
            ("e", 3.5, 1.0),
            ("f", 5.0, 1.0),
            ("g", 8.0, 1.0),
        ]:
            engine.spawn(worker(name, arrival, hold))
        engine.run()
        assert granted == ["a", "b", "c", "d", "e", "f", "g"]
        assert resource.queued == 0

    def test_release_without_acquire(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_utilisation_tracking(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)

        def worker():
            yield resource.acquire()
            yield Timeout(30.0)
            resource.release()

        engine.spawn(worker())
        engine.run(until=100.0)
        assert resource.utilisation(100.0) == pytest.approx(0.3)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Resource(Engine(), capacity=0)
