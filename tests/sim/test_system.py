"""Whole-system simulation: determinism, invariants, small behaviours."""

from __future__ import annotations

import math

import pytest

from repro.errors import ExperimentError
from repro.sim.latency import ZERO_LATENCY, LatencyModel
from repro.sim.system import SimulationConfig, run_simulation
from repro.workload.spec import WorkloadSpec

#: Small workload so each test run takes a fraction of a second.
SMALL = WorkloadSpec(n_objects=60, hot_set_size=10, n_partitions=5)


def small_config(**overrides) -> SimulationConfig:
    defaults = dict(
        mpl=3,
        til=100_000.0,
        tel=10_000.0,
        workload=SMALL,
        duration_ms=5_000.0,
        warmup_ms=500.0,
        seed=5,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConfigValidation:
    def test_bad_mpl(self):
        with pytest.raises(ExperimentError):
            small_config(mpl=0)

    def test_bad_warmup(self):
        with pytest.raises(ExperimentError):
            small_config(warmup_ms=6_000.0)

    def test_with_level(self):
        config = small_config().with_level(1.0, 2.0)
        assert config.til == 1.0 and config.tel == 2.0


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_simulation(small_config())
        b = run_simulation(small_config())
        assert a.commits == b.commits
        assert a.aborts == b.aborts
        assert a.metrics.reads == b.metrics.reads
        assert a.client_commits == b.client_commits

    def test_different_seeds_differ(self):
        a = run_simulation(small_config(seed=5))
        b = run_simulation(small_config(seed=6))
        assert (a.commits, a.metrics.reads) != (b.commits, b.metrics.reads)

    def test_shard_count_unobservable_in_simulation(self):
        """The DES is single-threaded, so running the workload on the
        sharded composite must reproduce the unsharded run exactly."""
        baseline = run_simulation(small_config())
        sharded = run_simulation(small_config(shards=4))
        assert sharded.commits == baseline.commits
        assert sharded.aborts == baseline.aborts
        assert sharded.metrics == baseline.metrics
        assert sharded.client_commits == baseline.client_commits

    def test_bad_shards_rejected(self):
        with pytest.raises(ExperimentError):
            small_config(shards=0)


class TestBasicBehaviour:
    def test_single_client_commits_everything(self):
        result = run_simulation(
            small_config(mpl=1, transactions_per_client=20, warmup_ms=0.0)
        )
        assert result.commits == 20
        assert result.aborts == 0
        assert result.client_commits == (20,)

    def test_throughput_positive(self):
        result = run_simulation(small_config())
        assert result.throughput > 0
        assert result.measured_ms == 4_500.0

    def test_zero_epsilon_admits_no_inconsistency(self):
        result = run_simulation(small_config(til=0.0, tel=0.0))
        # Only zero-divergence relaxations can be admitted; none of them
        # count as inconsistent operations.
        assert result.inconsistent_operations == 0

    def test_sr_protocol_admits_no_inconsistency(self):
        result = run_simulation(small_config(protocol="sr"))
        assert result.inconsistent_operations == 0

    def test_esr_beats_sr_under_contention(self):
        high = run_simulation(small_config(mpl=5))
        sr = run_simulation(small_config(mpl=5, til=0.0, tel=0.0))
        assert high.throughput > sr.throughput
        assert high.aborts <= sr.aborts

    def test_oil_zero_blocks_all_inconsistent_reads(self):
        # OIL gates the import side only; case-3 writes are gated by OEL.
        bounded = run_simulation(small_config(mpl=4, oil=0.0))
        by_case = bounded.metrics.inconsistent_by_case
        assert by_case.get("late-read-committed", 0) == 0
        assert by_case.get("read-uncommitted", 0) == 0

    def test_oil_and_oel_zero_admit_no_inconsistency(self):
        bounded = run_simulation(small_config(mpl=4, oil=0.0, oel=0.0))
        assert bounded.inconsistent_operations == 0

    def test_utilisation_in_unit_range(self):
        result = run_simulation(small_config())
        assert 0.0 <= result.server_utilisation <= 1.0

    def test_zero_latency_supported(self):
        result = run_simulation(
            small_config(latency=ZERO_LATENCY, duration_ms=1_000.0, warmup_ms=0.0)
        )
        assert result.commits > 0

    def test_custom_latency_slows_throughput(self):
        fast = run_simulation(small_config(mpl=1))
        slow = run_simulation(
            small_config(
                mpl=1,
                latency=LatencyModel(rpc_min=50.0, rpc_max=60.0, null_rpc=40.0),
            )
        )
        assert slow.throughput < fast.throughput


class TestMetricsConsistency:
    def test_commit_split_sums(self):
        result = run_simulation(small_config())
        m = result.metrics
        assert m.commits == m.commits_query + m.commits_update
        assert result.commits == m.commits

    def test_total_operations_is_reads_plus_writes(self):
        result = run_simulation(small_config())
        m = result.metrics
        assert m.total_operations == m.reads + m.writes

    def test_inconsistent_cases_sum(self):
        result = run_simulation(small_config(mpl=4))
        m = result.metrics
        assert m.inconsistent_operations == sum(m.inconsistent_by_case.values())

    def test_client_commits_sum_close_to_total(self):
        # Client counters are reset at warm-up together with the metrics.
        result = run_simulation(small_config())
        assert sum(result.client_commits) == result.commits
