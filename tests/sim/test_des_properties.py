"""Property tests for the discrete-event kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.des import Engine, Event, Resource, Timeout

delays = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestTimeOrdering:
    @settings(max_examples=100)
    @given(st.lists(delays, min_size=1, max_size=20))
    def test_callbacks_fire_in_time_order(self, schedule):
        engine = Engine()
        fired: list[float] = []
        for delay in schedule:
            engine.call_later(delay, lambda d=delay: fired.append(d))
        engine.run()
        assert fired == sorted(fired)
        assert engine.now == max(schedule)

    @settings(max_examples=100)
    @given(st.lists(delays, min_size=1, max_size=15))
    def test_process_finishes_at_sum_of_timeouts(self, waits):
        engine = Engine()

        def process():
            for wait in waits:
                yield Timeout(wait)

        proc = engine.spawn(process())
        engine.run()
        assert proc.completed.triggered
        assert engine.now == pytest.approx(sum(waits))

    @settings(max_examples=60)
    @given(st.lists(delays, min_size=1, max_size=10), delays)
    def test_run_until_never_overshoots(self, schedule, horizon):
        engine = Engine()
        for delay in schedule:
            engine.call_later(delay, lambda: None)
        engine.run(until=horizon)
        assert engine.now == pytest.approx(
            max(horizon, min(horizon, max(schedule)))
        )
        assert engine.now <= max(horizon, max(schedule))


class TestResourceProperties:
    @settings(max_examples=60)
    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=12
        ),
    )
    def test_total_service_conserved(self, capacity, service_times):
        """With c servers, makespan >= total work / c and >= max job."""
        engine = Engine()
        resource = Resource(engine, capacity=capacity)

        def job(duration):
            yield resource.acquire()
            yield Timeout(duration)
            resource.release()

        procs = [engine.spawn(job(d)) for d in service_times]
        engine.run_until_complete(procs)
        total = sum(service_times)
        assert engine.now >= max(service_times) - 1e-9
        assert engine.now >= total / capacity - 1e-9
        # No server can be idle while work waits: makespan <= total work.
        assert engine.now <= total + 1e-9

    @settings(max_examples=60)
    @given(st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=2, max_size=10))
    def test_unit_capacity_serialises_exactly(self, service_times):
        engine = Engine()
        resource = Resource(engine, capacity=1)

        def job(duration):
            yield resource.acquire()
            yield Timeout(duration)
            resource.release()

        procs = [engine.spawn(job(d)) for d in service_times]
        engine.run_until_complete(procs)
        assert engine.now == pytest.approx(sum(service_times))


class TestEventProperties:
    @settings(max_examples=50)
    @given(st.integers(min_value=1, max_value=10))
    def test_trigger_wakes_every_waiter_once(self, n_waiters):
        engine = Engine()
        gate = Event()
        woken = []

        def waiter(index):
            yield gate
            woken.append(index)

        for index in range(n_waiters):
            engine.spawn(waiter(index))
        engine.call_later(5.0, gate.trigger)
        engine.run()
        assert sorted(woken) == list(range(n_waiters))
