"""The snapshot read cache inside the discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.sim.system import SimulationConfig, run_simulation
from repro.workload.spec import WorkloadSpec

SMALL = WorkloadSpec(n_objects=60, hot_set_size=10, n_partitions=5)


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        mpl=4,
        til=100_000.0,
        tel=10_000.0,
        workload=SMALL,
        duration_ms=5_000.0,
        warmup_ms=500.0,
        seed=11,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestSimSnapshotCache:
    def test_cache_off_reports_no_stats(self):
        result = run_simulation(config())
        assert result.cache is None
        assert result.cache_stats is None

    def test_cache_on_serves_reads(self):
        result = run_simulation(config(snapshot_cache=True))
        stats = result.cache_stats
        assert stats is not None
        assert stats["hits"] > 0
        assert stats["divergence_charged"] >= 0.0

    def test_cache_never_hurts_throughput(self):
        # Cached reads take zero service time and no service unit, so at
        # the same seed the cached run commits at least as many queries.
        off = run_simulation(config())
        on = run_simulation(config(snapshot_cache=True))
        assert on.commits >= off.commits

    def test_cache_is_deterministic(self):
        a = run_simulation(config(snapshot_cache=True))
        b = run_simulation(config(snapshot_cache=True))
        assert a.commits == b.commits
        assert a.cache == b.cache

    def test_cache_requires_esr(self):
        with pytest.raises(ExperimentError):
            config(protocol="2pl", snapshot_cache=True)
