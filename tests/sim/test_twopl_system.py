"""The 2PL engines under the full simulated system."""

from __future__ import annotations

import pytest

from repro.sim.system import SimulationConfig, run_simulation
from repro.workload.spec import WorkloadSpec

SMALL = WorkloadSpec(n_objects=60, hot_set_size=10, n_partitions=5)


def run(protocol: str, til: float = 0.0, tel: float = 0.0, mpl: int = 5):
    return run_simulation(
        SimulationConfig(
            mpl=mpl,
            til=til,
            tel=tel,
            protocol=protocol,
            workload=SMALL,
            duration_ms=8_000.0,
            warmup_ms=1_000.0,
            seed=4,
        )
    )


class TestTwoPhaseUnderLoad:
    def test_strict_2pl_commits_without_inconsistency(self):
        result = run("2pl-sr")
        assert result.commits > 0
        assert result.inconsistent_operations == 0

    def test_relaxed_zero_bounds_matches_strict(self):
        zero = run("2pl", til=0.0, tel=0.0)
        strict = run("2pl-sr")
        assert zero.inconsistent_operations == 0
        assert zero.commits == strict.commits
        assert zero.aborts == strict.aborts

    def test_bounds_raise_throughput(self):
        high = run("2pl", til=100_000.0, tel=10_000.0)
        strict = run("2pl-sr")
        assert high.throughput > strict.throughput
        assert high.inconsistent_operations > 0

    def test_only_deadlocks_abort_under_locking(self):
        result = run("2pl-sr", mpl=8)
        reasons = set(result.metrics.aborts_by_reason)
        assert reasons <= {"deadlock"}

    def test_high_bounds_suppress_deadlocks(self):
        strict = run("2pl-sr", mpl=8)
        high = run("2pl", til=100_000.0, tel=10_000.0, mpl=8)
        assert high.metrics.aborts_by_reason.get(
            "deadlock", 0
        ) <= strict.metrics.aborts_by_reason.get("deadlock", 0)

    def test_deterministic(self):
        a = run("2pl", til=50_000.0, tel=5_000.0)
        b = run("2pl", til=50_000.0, tel=5_000.0)
        assert (a.commits, a.aborts, a.metrics.reads) == (
            b.commits,
            b.aborts,
            b.metrics.reads,
        )

    def test_comparable_to_tso_at_high_bounds(self):
        lock_based = run("2pl", til=100_000.0, tel=10_000.0)
        tso_based = run("esr", til=100_000.0, tel=10_000.0)
        assert lock_based.throughput == pytest.approx(
            tso_based.throughput, rel=0.35
        )
