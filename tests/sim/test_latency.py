"""RPC latency models."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.errors import SpecificationError
from repro.sim.latency import PAPER_LATENCY, ZERO_LATENCY, LatencyModel


class TestPaperLatency:
    def test_paper_timings(self):
        assert PAPER_LATENCY.rpc_min == 17.0
        assert PAPER_LATENCY.rpc_max == 20.0
        assert PAPER_LATENCY.null_rpc == 11.0
        assert PAPER_LATENCY.restart_delay == 0.0  # immediate restarts

    def test_operation_delay_in_range(self):
        rng = random.Random(1)
        delays = [PAPER_LATENCY.operation_delay(rng) for _ in range(500)]
        assert all(17.0 <= d <= 20.0 for d in delays)
        assert statistics.mean(delays) == pytest.approx(18.5, abs=0.3)

    def test_commit_delay_is_null_rpc(self):
        rng = random.Random(1)
        assert PAPER_LATENCY.commit_delay(rng) == 11.0


class TestValidation:
    def test_zero_latency(self):
        rng = random.Random(1)
        assert ZERO_LATENCY.operation_delay(rng) == 0.0
        assert ZERO_LATENCY.commit_delay(rng) == 0.0

    def test_degenerate_range_is_constant(self):
        model = LatencyModel(rpc_min=5.0, rpc_max=5.0)
        assert model.operation_delay(random.Random(1)) == 5.0

    def test_inverted_range_rejected(self):
        with pytest.raises(SpecificationError):
            LatencyModel(rpc_min=20.0, rpc_max=17.0)

    def test_negative_latencies_rejected(self):
        with pytest.raises(SpecificationError):
            LatencyModel(rpc_min=-1.0, rpc_max=5.0)
        with pytest.raises(SpecificationError):
            LatencyModel(null_rpc=-1.0)
        with pytest.raises(SpecificationError):
            LatencyModel(restart_delay=-1.0)
