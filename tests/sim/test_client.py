"""The simulated client: program execution, restarts, outputs."""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.engine.manager import TransactionManager
from repro.lang.parser import parse_program
from repro.sim.client import SimClient
from repro.sim.des import Engine
from repro.sim.latency import PAPER_LATENCY, ZERO_LATENCY, LatencyModel
from repro.sim.server import SimServer


def make_system(latency=ZERO_LATENCY):
    db = Database()
    db.create_many((i, 100.0 * i) for i in range(1, 11))
    engine = Engine()
    manager = TransactionManager(db)
    server = SimServer(manager, engine, service_time=0.0)
    return engine, server


def run_client(programs, latency=ZERO_LATENCY):
    engine, server = make_system(latency)
    client = SimClient(1, server, programs, latency=latency, seed=1)
    process = engine.spawn(client.process())
    engine.run_until_complete([process])
    return engine, server, client


class TestProgramExecution:
    def test_query_commits_and_outputs(self):
        program = parse_program(
            'BEGIN Query TIL 0\nt1 = Read 1\noutput("Sum is: ", t1)\nCOMMIT\n'
        )
        _, server, client = run_client([program])
        assert client.committed == 1
        assert client.restarts == 0
        assert client.outputs == ["Sum is: 100"]
        assert server.manager.metrics.commits == 1

    def test_update_applies_writes(self):
        program = parse_program(
            "BEGIN Update TEL 0\nt1 = Read 2\nWrite 2 , t1+5\nCOMMIT\n"
        )
        _, server, _ = run_client([program])
        assert server.manager.database.get(2).committed_value == 205.0

    def test_abort_terminator_discards_writes(self):
        program = parse_program("BEGIN Update TEL 0\nWrite 2 , 999\nABORT\n")
        _, server, client = run_client([program])
        assert client.committed == 1  # the program "completed"
        assert client.outputs == []
        assert server.manager.database.get(2).committed_value == 200.0
        assert server.manager.metrics.aborts == 1

    def test_simulated_time_advances_with_latency(self):
        program = parse_program(
            "BEGIN Query TIL 0\nt1 = Read 1\nt2 = Read 2\nCOMMIT\n"
        )
        latency = LatencyModel(rpc_min=20.0, rpc_max=20.0, null_rpc=10.0)
        engine, _, _ = run_client([program], latency=latency)
        # 2 reads at 20ms + 1 commit at 10ms (+ zero service time).
        assert engine.now == pytest.approx(50.0)

    def test_multiple_programs_sequential(self):
        programs = [
            parse_program("BEGIN Query TIL 0\nt1 = Read 1\nCOMMIT\n"),
            parse_program("BEGIN Query TIL 0\nt1 = Read 2\nCOMMIT\n"),
        ]
        _, server, client = run_client(programs)
        assert client.committed == 2
        assert server.manager.metrics.commits == 2


class TestRestarts:
    def test_client_resubmits_until_commit(self):
        # Two clients race on the same object; strict ordering plus late
        # operations force at least one restart under zero bounds.
        db = Database()
        db.create_many((i, 100.0) for i in range(1, 4))
        engine = Engine()
        manager = TransactionManager(db)
        server = SimServer(manager, engine, service_time=1.0)
        latency = LatencyModel(rpc_min=5.0, rpc_max=5.0, null_rpc=2.0)
        update = parse_program(
            "BEGIN Update TEL 0\nt1 = Read 1\nWrite 1 , t1+1\nCOMMIT\n"
        )
        query = parse_program(
            "BEGIN Query TIL 0\nt1 = Read 2\nt2 = Read 1\nt3 = Read 3\nCOMMIT\n"
        )
        clients = [
            SimClient(1, server, [query] * 10, latency=latency, seed=1),
            SimClient(2, server, [update] * 10, latency=latency, seed=2),
        ]
        processes = [engine.spawn(c.process()) for c in clients]
        engine.run_until_complete(processes)
        assert clients[0].committed == 10
        assert clients[1].committed == 10
        # Everything eventually committed despite conflicts.
        assert manager.metrics.commits == 20
        assert db.get(1).committed_value == 110.0
