"""Why the paper corrected client clocks: skew distorts TSO fairness.

A site whose (uncorrected) clock runs far ahead always begins with the
newest timestamp, so its operations are never late and it starves its
peers of write access; a site running far behind is perpetually late and
starves itself.  The paper applied a correction factor to achieve
virtual clock synchronisation so "the timestamps from all the sites are
given a fair treatment" — these tests demonstrate what that correction
prevents, and that the corrected (zero-skew) system is fair.
"""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.engine.manager import TransactionManager
from repro.lang.parser import parse_program
from repro.sim.client import SimClient
from repro.sim.des import Engine
from repro.sim.latency import LatencyModel
from repro.sim.server import SimServer

# A little jitter keeps the two clients from running in deterministic
# lockstep (with constant latency the site-id tiebreak would hand every
# conflict to the same site).
LATENCY = LatencyModel(rpc_min=4.0, rpc_max=6.0, null_rpc=2.0)


def contention_program(object_id: int) -> str:
    return (
        f"BEGIN Update TEL 0\nt1 = Read {object_id}\n"
        f"Write {object_id} , t1+1\nCOMMIT\n"
    )


def run_two_sites(skew_a: float, skew_b: float, duration: float = 4_000.0):
    """Two update clients hammering the same object."""
    db = Database()
    db.create_object(1, 100.0)
    engine = Engine()
    manager = TransactionManager(db)
    server = SimServer(manager, engine, service_time=0.5)
    program = parse_program(contention_program(1))

    def endless():
        while True:
            yield program

    client_a = SimClient(
        1, server, endless(), latency=LATENCY, seed=1, clock_skew=skew_a
    )
    client_b = SimClient(
        2, server, endless(), latency=LATENCY, seed=2, clock_skew=skew_b
    )
    engine.spawn(client_a.process())
    engine.spawn(client_b.process())
    engine.run(until=duration)
    return client_a, client_b


class TestClockSkewFairness:
    def test_synchronized_sites_share_throughput(self):
        a, b = run_two_sites(0.0, 0.0)
        total = a.committed + b.committed
        assert total > 50
        # Neither site should take much more than its fair share.
        assert min(a.committed, b.committed) >= total * 0.35

    def test_uncorrected_skew_starves_the_lagging_site(self):
        # Site B's clock runs two (simulated) minutes behind — the paper's
        # skew magnitude.  Its timestamps are always far in the past, so
        # its read-modify-write pairs are perpetually late.
        a, b = run_two_sites(0.0, -120_000.0)
        assert a.committed > 30
        assert b.committed <= a.committed * 0.25
        assert b.restarts > b.committed  # mostly spinning on aborts

    def test_correction_restores_fairness(self):
        # The same skewed site after the paper's virtual-clock correction
        # (modelled as zero residual skew) is fair again.
        a_skewed, b_skewed = run_two_sites(0.0, -120_000.0)
        a_fixed, b_fixed = run_two_sites(0.0, 0.0)
        skewed_share = b_skewed.committed / max(
            1, a_skewed.committed + b_skewed.committed
        )
        fixed_share = b_fixed.committed / max(
            1, a_fixed.committed + b_fixed.committed
        )
        assert fixed_share > skewed_share + 0.2
