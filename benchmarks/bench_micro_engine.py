"""Micro-benchmarks of the engine's hot paths.

These are throughput numbers for the building blocks every simulated
operation passes through: the DES kernel's dispatch loops (zero-delay
fast path, heap path, resource queue), the TSO/ESR decision +
bookkeeping in the transaction manager, hierarchy charging, proper-value
lookup, timestamp generation, and the transaction-language pipeline.

The kernel/ledger workloads are the same callables ``repro bench-hotpath``
times for ``BENCH_hotpath.json``; here pytest-benchmark wraps them, so
``--benchmark-disable`` turns this file into an execution smoke test
(CI runs it that way to keep the perf harness from rotting).
"""

from __future__ import annotations

from repro.core.bounds import ObjectBounds, TransactionBounds
from repro.core.hierarchy import GroupCatalog, HierarchyLedger
from repro.engine.database import Database
from repro.engine.manager import TransactionManager
from repro.engine.objects import DataObject
from repro.engine.timestamps import Timestamp, TimestampGenerator
from repro.experiments.hotpath import (
    catalog_members_workload,
    engine_dispatch_workload,
    ledger_charge_workload,
    resource_churn_workload,
    timeout_dispatch_workload,
)
from repro.lang.compiler import format_program
from repro.lang.parser import parse_program
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import WorkloadSpec


def test_kernel_zero_delay_dispatch(benchmark):
    """Event-triggered resumes through the ready-queue fast path."""
    benchmark(engine_dispatch_workload(processes=20, steps=500))


def test_kernel_timeout_dispatch(benchmark):
    """Positive-delay timeouts through the heap path."""
    benchmark(timeout_dispatch_workload(processes=20, steps=500))


def test_kernel_resource_churn(benchmark):
    """Contended acquire/release on a deque-backed FIFO resource."""
    benchmark(resource_churn_workload(workers=20, cycles=100))


def test_ledger_limited_path_charge(benchmark):
    """Admission walks over the shared limited-path cache."""
    benchmark(ledger_charge_workload(ledgers=50, objects=100))


def test_catalog_members_reverse_index(benchmark):
    """Member listing via the per-group reverse index."""
    benchmark(catalog_members_workload(calls=500, objects=2000))


def _database(n: int = 200) -> Database:
    db = Database()
    db.create_many((i, 5_000.0) for i in range(n))
    return db


def test_consistent_read_throughput(benchmark):
    db = _database()
    manager = TransactionManager(db)

    def run():
        txn = manager.begin("query", TransactionBounds(import_limit=1e9))
        for object_id in range(100):
            manager.read(txn, object_id)
        manager.commit(txn)

    benchmark(run)


def test_inconsistent_read_throughput(benchmark):
    """Case-1 late reads: proper-value lookup + hierarchy charge per read."""
    db = _database()
    manager = TransactionManager(db)
    # Age every object with a committed write so old readers are late.
    writer = manager.begin("update", TransactionBounds(export_limit=1e9))
    for object_id in range(100):
        manager.write(writer, object_id, 5_500.0)
    manager.commit(writer)

    def run():
        txn = manager.begin(
            "query",
            TransactionBounds(import_limit=1e9),
            timestamp=Timestamp(-1.0, 9, run.counter),
        )
        run.counter += 1
        for object_id in range(100):
            manager.read(txn, object_id)
        manager.commit(txn)

    run.counter = 0
    benchmark(run)


def test_update_commit_throughput(benchmark):
    db = _database()
    manager = TransactionManager(db)

    def run():
        txn = manager.begin("update", TransactionBounds(export_limit=1e9))
        for object_id in range(0, 40, 2):
            value = manager.read(txn, object_id).value
            manager.write(txn, object_id, value + 1.0)
        manager.commit(txn)

    benchmark(run)


def test_hierarchy_charge_throughput(benchmark):
    catalog = GroupCatalog()
    catalog.add_group("a")
    catalog.add_group("b", parent="a")
    catalog.add_group("c", parent="b")
    for object_id in range(100):
        catalog.assign(object_id, "c")

    def run():
        ledger = HierarchyLedger(
            catalog, 1e12, {"a": 1e12, "b": 1e12, "c": 1e12}
        )
        for object_id in range(100):
            ledger.check_and_charge(object_id, 1.0, object_limit=10.0)

    benchmark(run)


def test_proper_value_lookup(benchmark):
    obj = DataObject(1, 0.0)
    for t in range(1, 21):
        obj.stage_write(t, Timestamp(float(t), 0, t), float(t))
        obj.commit_write()
    target = Timestamp(3.5, 0, 0)
    benchmark(lambda: obj.proper_value_for(target))


def test_timestamp_generation(benchmark):
    gen = TimestampGenerator(site=1)
    benchmark(gen.next)


def test_parse_format_round_trip(benchmark):
    generator = WorkloadGenerator(WorkloadSpec(), seed=1)
    source = format_program(generator.generate_query(100_000.0))
    benchmark(lambda: format_program(parse_program(source)))
