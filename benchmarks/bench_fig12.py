"""Figure 12 — Throughput vs Object Import Limit (TIL varies).

MPL held constant; OIL sweeps in units of the average write change w.
The paper's second headline observation: for low TIL, throughput peaks
at an *intermediate* OIL — zero OIL is the SR case, and a very large OIL
admits operations whose transactions are doomed to abort later, wasting
work.  The timed kernel is the interesting point: low TIL at OIL = 2w.
"""

from __future__ import annotations

from conftest import BENCH_PLAN, report_figure

from repro.experiments.figures import fig12
from repro.sim.system import SimulationConfig, run_simulation


def test_fig12_throughput_vs_oil(benchmark, shared_oil_study):
    w = BENCH_PLAN.workload.mean_write_change
    config = SimulationConfig(
        mpl=4,
        til=10_000.0,
        tel=1_000.0,
        oil=2.0 * w,
        duration_ms=BENCH_PLAN.duration_ms,
        warmup_ms=BENCH_PLAN.warmup_ms,
        seed=1,
    )
    benchmark.pedantic(run_simulation, args=(config,), rounds=3, iterations=1)
    figure = fig12(BENCH_PLAN, study=shared_oil_study)
    report_figure(figure)
