"""Figure 11 — Throughput vs Transaction Import Limit (TEL varies).

MPL is held at 4 (the paper's bound-study setting); TIL sweeps from 0
(SR) to 150,000 for three constant TEL levels.  Expected shape: rising
with TIL, steepest at small-to-medium values.
"""

from __future__ import annotations

from conftest import report_figure

from repro.experiments.figures import fig11


def test_fig11_throughput_vs_til(benchmark, bench_plan):
    figure = benchmark.pedantic(
        fig11, args=(bench_plan,), rounds=1, iterations=1
    )
    report_figure(figure)
    # The SR end of every curve is the floor.
    for series in figure.series:
        means = series.means()
        assert means[0] == min(means) or means[0] <= means[-1] * 0.75
