"""Extension: multi-level hierarchical bounds under the paper workload.

The paper evaluates only the two-level hierarchy; this extension runs a
three-level one (transaction → hot group → partition subgroups →
objects) on every query and quantifies section 5.3.1's "small price":

* loose group limits must be behaviourally free (same throughput as the
  flat two-level configuration);
* tightening the group limits trades throughput for per-group accuracy,
  mirroring at the group level what Figure 12 shows for OIL.
"""

from __future__ import annotations

from conftest import BENCH_PLAN

from repro.experiments.extensions import hierarchy_settings, hierarchy_study
from repro.experiments.report import format_table
from repro.sim.system import SimulationConfig, run_simulation


def test_hierarchy_strictness_tradeoff(benchmark, bench_plan, capsys=None):
    study = hierarchy_study(bench_plan)
    limits = hierarchy_settings(bench_plan.workload)["medium groups"]
    config = SimulationConfig(
        mpl=4,
        til=100_000.0,
        tel=10_000.0,
        query_group_limits=limits,
        duration_ms=BENCH_PLAN.duration_ms,
        warmup_ms=BENCH_PLAN.warmup_ms,
        seed=1,
    )
    benchmark.pedantic(run_simulation, args=(config,), rounds=2, iterations=1)

    print()
    print(
        format_table(
            ["setting", "throughput", "aborts", "inconsistent ops"],
            [
                (
                    name,
                    f"{m.throughput.mean:.2f}",
                    f"{m.aborts.mean:.0f}",
                    f"{m.inconsistent_operations.mean:.0f}",
                )
                for name, m in study.items()
            ],
        )
    )

    flat = study["flat (no groups)"]
    loose = study["loose groups"]
    tight = study["tight groups"]
    # Loose hierarchical limits are free.
    assert loose.throughput.mean >= flat.throughput.mean * 0.93
    # Tight ones bind: fewer inconsistent admissions, lower throughput.
    assert (
        tight.inconsistent_operations.mean
        < flat.inconsistent_operations.mean * 0.75
    )
    assert tight.throughput.mean < flat.throughput.mean
    assert tight.aborts.mean > flat.aborts.mean
