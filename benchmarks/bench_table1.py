"""Table 1 (paper section 7): the inconsistency bound levels.

The table is an input, not a measurement; this benchmark asserts the
values match the paper and times the (trivial) generation so the table
is part of the regeneratable record.
"""

from __future__ import annotations

from repro.experiments.config import bounds_table
from repro.experiments.report import format_table


def test_table1_bound_levels(benchmark):
    rows = benchmark(bounds_table)
    by_level = {row["level"]: row for row in rows}
    assert by_level["high-epsilon"] == {
        "level": "high-epsilon",
        "TIL": 100_000,
        "TEL": 10_000,
    }
    assert by_level["medium-epsilon"]["TIL"] == 50_000
    assert by_level["medium-epsilon"]["TEL"] == 5_000
    assert by_level["low-epsilon"]["TIL"] == 10_000
    assert by_level["low-epsilon"]["TEL"] == 1_000
    assert by_level["zero-epsilon"]["TIL"] == 0
    print()
    print(
        format_table(
            ["level", "TIL", "TEL"],
            [(r["level"], f"{r['TIL']:,.0f}", f"{r['TEL']:,.0f}") for r in rows],
        )
    )
