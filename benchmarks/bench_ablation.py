"""Ablations of the design choices DESIGN.md calls out.

These go beyond the paper's figures and quantify the knobs the
implementation had to pick:

* **export policy** — the paper charges a late write with the *maximum*
  divergence over concurrent query readers; Wu et al. charge the *sum*.
  The sum is more conservative, so it must abort at least as often and
  never win on throughput.
* **version window** — the paper stores the last 20 committed writes per
  object for proper-value lookup.  A window of 1 degrades the proper
  value towards the present value (divergences collapse to ~0, silently
  under-charging); the ablation shows the measured import falling as the
  window shrinks, which is why 20 matters.
* **hierarchy depth** — group limits add per-operation work; this times
  the admission path at depth 0 (transaction level only) vs depth 3.
"""

from __future__ import annotations

from conftest import BENCH_PLAN

from repro.core.bounds import TransactionBounds
from repro.core.hierarchy import GroupCatalog, HierarchyLedger
from repro.experiments.report import format_table
from repro.sim.system import SimulationConfig, run_simulation


def _config(**overrides) -> SimulationConfig:
    defaults = dict(
        mpl=6,
        til=100_000.0,
        tel=10_000.0,
        duration_ms=BENCH_PLAN.duration_ms,
        warmup_ms=BENCH_PLAN.warmup_ms,
        seed=1,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def test_export_policy_max_vs_sum(benchmark):
    """The paper's max rule admits at least as much as Wu et al.'s sum."""
    results = {}
    for policy in ("max", "sum"):
        results[policy] = run_simulation(_config(export_policy=policy))
    benchmark.pedantic(
        run_simulation, args=(_config(export_policy="max"),), rounds=2
    )
    print()
    print(
        format_table(
            ["policy", "throughput", "aborts", "inconsistent ops"],
            [
                (
                    policy,
                    f"{r.throughput:.2f}",
                    r.aborts,
                    r.inconsistent_operations,
                )
                for policy, r in results.items()
            ],
        )
    )
    assert results["sum"].aborts >= results["max"].aborts
    assert results["sum"].throughput <= results["max"].throughput * 1.05


def test_version_window_sensitivity(benchmark):
    """Shrinking the proper-value window under-measures imports."""
    rows = []
    imports = {}
    for window in (1, 5, 20):
        result = run_simulation(_config(mpl=6, version_window=window))
        imports[window] = result.metrics.total_imported
        rows.append(
            (
                window,
                f"{result.throughput:.2f}",
                f"{result.metrics.total_imported:.0f}",
                result.inconsistent_operations,
            )
        )
    benchmark.pedantic(
        run_simulation, args=(_config(version_window=20),), rounds=2
    )
    print()
    print(
        format_table(
            ["window", "throughput", "total imported", "inconsistent ops"],
            rows,
        )
    )
    # A window of 1 keeps only the newest committed write, so the proper
    # value collapses towards the present value and the measured import
    # shrinks dramatically — the under-charging the paper's 20 avoids.
    assert imports[1] < imports[20] * 0.5


def test_hierarchy_depth_overhead(benchmark):
    """Admission cost of deep group trees vs a flat transaction limit."""
    flat_catalog = GroupCatalog()
    deep_catalog = GroupCatalog()
    deep_catalog.add_group("l1")
    deep_catalog.add_group("l2", parent="l1")
    deep_catalog.add_group("l3", parent="l2")
    for object_id in range(64):
        deep_catalog.assign(object_id, "l3")

    def admit(catalog, limits):
        ledger = HierarchyLedger(catalog, 1e12, limits)
        for object_id in range(64):
            ledger.check_and_charge(object_id, 1.0)
        return ledger.total

    flat_total = admit(flat_catalog, None)
    deep_total = admit(
        deep_catalog, {"l1": 1e12, "l2": 1e12, "l3": 1e12}
    )
    assert flat_total == deep_total == 64.0
    benchmark(
        lambda: admit(deep_catalog, {"l1": 1e12, "l2": 1e12, "l3": 1e12})
    )
