"""Figure 13 — Average Operations per Transaction vs OIL (TIL varies).

The waste meter behind Figure 12: operations executed per committed
transaction, including the operations of its aborted incarnations.
Expected shape: falls as OIL loosens for high TIL; for low TIL it falls,
then rises again at large OIL — transactions admit doomed operations and
abort later, having wasted more work.
"""

from __future__ import annotations

import math

from conftest import BENCH_PLAN, report_figure

from repro.experiments.figures import fig13
from repro.sim.system import SimulationConfig, run_simulation


def test_fig13_operations_per_transaction_vs_oil(benchmark, shared_oil_study):
    config = SimulationConfig(
        mpl=4,
        til=10_000.0,
        tel=1_000.0,
        oil=math.inf,
        duration_ms=BENCH_PLAN.duration_ms,
        warmup_ms=BENCH_PLAN.warmup_ms,
        seed=1,
    )
    benchmark.pedantic(run_simulation, args=(config,), rounds=3, iterations=1)
    figure = fig13(BENCH_PLAN, study=shared_oil_study)
    report_figure(figure)
