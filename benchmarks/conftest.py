"""Shared fixtures for the benchmark suite.

Figures 7–10 are views over one MPL sweep and Figures 12–13 over one OIL
sweep, so those studies are computed once per session and shared across
the per-figure benchmark files.  Each ``bench_figNN`` file then:

* times a representative simulation configuration with pytest-benchmark;
* regenerates its figure from the shared study;
* asserts the paper's shape checks and prints the measured table.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.experiments.analysis import check_figure
from repro.experiments.config import MeasurementPlan
from repro.experiments.figures import FigureResult, mpl_study, oil_study
from repro.experiments.report import figure_table

#: The measurement plan behind every figure benchmark: long enough for
#: stable shapes, short enough for the suite to finish in minutes.
BENCH_PLAN = MeasurementPlan(
    duration_ms=30_000.0, warmup_ms=3_000.0, repetitions=2, base_seed=1
)


@pytest.fixture(scope="session")
def shared_mpl_study():
    """The MPL sweep behind Figures 7-10 (computed once per session)."""
    return mpl_study(BENCH_PLAN)


@pytest.fixture(scope="session")
def shared_oil_study():
    """The OIL sweep behind Figures 12-13 (computed once per session)."""
    return oil_study(BENCH_PLAN)


def report_figure(figure: FigureResult) -> None:
    """Print the measured table and enforce the paper's shape checks."""
    print()
    print(figure.title)
    print(figure_table(figure))
    checks = check_figure(figure)
    for check in checks:
        print(check)
    failed = [check for check in checks if not check.passed]
    assert not failed, f"shape checks failed: {[c.name for c in failed]}"
