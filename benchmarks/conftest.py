"""Shared fixtures for the benchmark suite.

Figures 7–10 are views over one MPL sweep and Figures 12–13 over one OIL
sweep, so those studies are computed once per session and shared across
the per-figure benchmark files.  Each ``bench_figNN`` file then:

* times a representative simulation configuration with pytest-benchmark;
* regenerates its figure from the shared study;
* asserts the paper's shape checks and prints the measured table.

The shared studies fan their repetition cells out over the parallel
experiment runner; pass ``--workers N`` / ``--cell-timeout S`` to
control the pool (defaults: all cores, no timeout).  Estimates are
bit-identical regardless of the worker count.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.experiments.analysis import check_figure
from repro.experiments.config import MeasurementPlan
from repro.experiments.figures import FigureResult, mpl_study, oil_study
from repro.experiments.report import figure_table

#: The measurement plan behind every figure benchmark: long enough for
#: stable shapes, short enough for the suite to finish in minutes.
BENCH_PLAN = MeasurementPlan(
    duration_ms=30_000.0, warmup_ms=3_000.0, repetitions=2, base_seed=1
)


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        type=int,
        default=None,
        help="worker processes for repetition cells (default: all cores)",
    )
    parser.addoption(
        "--cell-timeout",
        type=float,
        default=None,
        help="per-cell wall-clock timeout in seconds (default: none)",
    )


def _pool_options(config) -> tuple[int, float | None]:
    # ``benchmarks/conftest.py`` is only an *initial* conftest when the
    # suite is invoked as ``pytest benchmarks/...``; fall back to the
    # defaults when the options were never registered.
    try:
        workers = config.getoption("--workers")
        timeout = config.getoption("--cell-timeout")
    except ValueError:
        return os.cpu_count() or 1, None
    return workers if workers is not None else (os.cpu_count() or 1), timeout


@pytest.fixture(scope="session")
def bench_plan(pytestconfig) -> MeasurementPlan:
    """BENCH_PLAN with the session's worker-pool options applied."""
    workers, timeout = _pool_options(pytestconfig)
    return replace(BENCH_PLAN, max_workers=workers, cell_timeout_s=timeout)


@pytest.fixture(scope="session")
def shared_mpl_study(bench_plan):
    """The MPL sweep behind Figures 7-10 (computed once per session)."""
    return mpl_study(bench_plan)


@pytest.fixture(scope="session")
def shared_oil_study(bench_plan):
    """The OIL sweep behind Figures 12-13 (computed once per session)."""
    return oil_study(bench_plan)


def report_figure(figure: FigureResult) -> None:
    """Print the measured table and enforce the paper's shape checks."""
    print()
    print(figure.title)
    print(figure_table(figure))
    checks = check_figure(figure)
    for check in checks:
        print(check)
    failed = [check for check in checks if not check.passed]
    assert not failed, f"shape checks failed: {[c.name for c in failed]}"
