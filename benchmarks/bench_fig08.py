"""Figure 8 — Successful Inconsistent Operations vs MPL.

Counts operations that executed *despite* viewing or exporting
inconsistency (the zero-epsilon curve does not exist: SR admits none).
Expected shape: grows with both MPL and the bound level.  The timed
kernel is the low-epsilon MPL-10 run, where the counter churns most.
"""

from __future__ import annotations

from conftest import BENCH_PLAN, report_figure

from repro.experiments.figures import fig8
from repro.sim.system import SimulationConfig, run_simulation


def test_fig8_inconsistent_operations_vs_mpl(benchmark, shared_mpl_study):
    config = SimulationConfig(
        mpl=10,
        til=10_000.0,
        tel=1_000.0,
        duration_ms=BENCH_PLAN.duration_ms,
        warmup_ms=BENCH_PLAN.warmup_ms,
        seed=1,
    )
    benchmark.pedantic(run_simulation, args=(config,), rounds=3, iterations=1)
    figure = fig8(BENCH_PLAN, study=shared_mpl_study)
    report_figure(figure)
    # Under SR semantics the counter must be structurally zero.
    zero_runs = shared_mpl_study["zero-epsilon"]
    assert all(
        m.inconsistent_operations.mean == 0 for m in zero_runs.values()
    )
