"""Figure 7 — Throughput vs Multiprogramming Level.

Regenerates the paper's headline figure: four throughput curves (zero /
low / medium / high epsilon) over MPL 1–10, and asserts its qualitative
claims — curves ordered by bound level, a clear ESR-over-SR gain, and
the thrashing point shifting right as bounds loosen.  The timed kernel
is one full simulation run at the contention knee (MPL 5, high epsilon).
"""

from __future__ import annotations

from conftest import BENCH_PLAN, report_figure

from repro.experiments.figures import fig7
from repro.sim.system import SimulationConfig, run_simulation


def test_fig7_throughput_vs_mpl(benchmark, shared_mpl_study):
    config = SimulationConfig(
        mpl=5,
        til=100_000.0,
        tel=10_000.0,
        duration_ms=BENCH_PLAN.duration_ms,
        warmup_ms=BENCH_PLAN.warmup_ms,
        seed=1,
    )
    benchmark.pedantic(run_simulation, args=(config,), rounds=3, iterations=1)
    figure = fig7(BENCH_PLAN, study=shared_mpl_study)
    report_figure(figure)
