"""Figure 10 — Total Operations (R + W) vs MPL.

Total operations executed, including work thrown away by aborts.  The
paper reads this figure as a waste meter: the high-epsilon curve (no
aborts) is the useful-work floor; the gap between another level's
operations-per-commit and that floor is wasted effort.  The benchmark
asserts exactly that relationship since the raw totals converge once the
server saturates.
"""

from __future__ import annotations

from conftest import BENCH_PLAN, report_figure

from repro.experiments.figures import fig10
from repro.sim.system import SimulationConfig, run_simulation


def test_fig10_total_operations_vs_mpl(benchmark, shared_mpl_study):
    config = SimulationConfig(
        mpl=6,
        til=50_000.0,
        tel=5_000.0,
        duration_ms=BENCH_PLAN.duration_ms,
        warmup_ms=BENCH_PLAN.warmup_ms,
        seed=1,
    )
    benchmark.pedantic(run_simulation, args=(config,), rounds=3, iterations=1)
    figure = fig10(BENCH_PLAN, study=shared_mpl_study)
    report_figure(figure)
    # The waste reading: at MPL 8+, zero-epsilon spends strictly more
    # operations per committed transaction than high-epsilon.
    for mpl in (8, 9, 10):
        zero_opc = shared_mpl_study["zero-epsilon"][mpl].operations_per_commit.mean
        high_opc = shared_mpl_study["high-epsilon"][mpl].operations_per_commit.mean
        assert zero_opc > high_opc * 1.2, (
            f"expected wasted work at MPL {mpl}: zero={zero_opc:.1f} "
            f"high={high_opc:.1f}"
        )
