"""Ablation: the paper's wait-based strict ordering vs abort-on-conflict.

Paper section 4: "we enforce strict ordering by using a wait based
protocol for concurrent operations that are not able to execute.  For
late operations … we do aborts with immediate restarts."  This ablation
flips the first choice — conflicts abort-and-restart instead of
waiting — and measures what the paper's design bought:

* at **high bounds** the two policies coincide: ESR admits nearly every
  conflicting operation, so there is almost nothing left to wait for;
* at **zero bounds** (SR) the choice matters and crosses over with
  load — aborting conflicting readers is competitive while restarts are
  cheap, but under heavier contention restart work snowballs and the
  paper's waits win.
"""

from __future__ import annotations

from conftest import BENCH_PLAN

from repro.experiments.report import format_table
from repro.sim.system import SimulationConfig, run_simulation


def _run(wait_policy: str, til: float, tel: float, mpl: int):
    return run_simulation(
        SimulationConfig(
            mpl=mpl,
            til=til,
            tel=tel,
            wait_policy=wait_policy,
            duration_ms=BENCH_PLAN.duration_ms,
            warmup_ms=BENCH_PLAN.warmup_ms,
            seed=1,
        )
    )


def test_wait_policy_ablation(benchmark):
    rows = []
    results = {}
    for label, til, tel in (("zero", 0.0, 0.0), ("high", 100_000.0, 10_000.0)):
        for policy in ("wait", "abort"):
            for mpl in (4, 8):
                result = _run(policy, til, tel, mpl)
                results[(label, policy, mpl)] = result
                rows.append(
                    (
                        label,
                        policy,
                        mpl,
                        f"{result.throughput:.2f}",
                        result.aborts,
                        result.metrics.waits,
                    )
                )
    benchmark.pedantic(_run, args=("wait", 0.0, 0.0, 8), rounds=2)
    print()
    print(
        format_table(
            ["bounds", "policy", "MPL", "throughput", "aborts", "waits"],
            rows,
        )
    )
    # The abort policy produces no waits at all, by construction.
    assert results[("zero", "abort", 8)].metrics.waits == 0
    assert results[("zero", "wait", 8)].metrics.waits > 0
    # With high bounds the policies are indistinguishable (nothing waits).
    high_wait = results[("high", "wait", 8)].throughput
    high_abort = results[("high", "abort", 8)].throughput
    assert abs(high_wait - high_abort) / high_wait < 0.10
    # Which policy wins at zero bounds depends on the contention level —
    # the crossover itself is the finding — so no directional assertion
    # there; the printed table carries the measurement.
