"""Extension: ESR vs multi-version timestamp ordering (paper §5.1).

The paper is explicit that its last-20-writes list "is not the same as
multi-version timestamp ordering": MVTO *returns* the old version to a
late reader, ESR returns the *current* value and only uses the old one
to measure inconsistency.  This benchmark runs true MVTO on the paper
workload next to ESR and the SR baseline:

* MVTO queries never abort or wait, so MVTO matches high-epsilon ESR on
  throughput and crushes SR — serializability was never the expensive
  part; *reading the current value* was;
* the trade ESR makes is freshness: MVTO's answers are exact but as of
  the query's start; ESR's answers are current with error ≤ TIL (the
  engine-level tests pin the values; here we check the performance
  side).
"""

from __future__ import annotations

from conftest import BENCH_PLAN

from repro.experiments.report import format_table
from repro.sim.system import SimulationConfig, run_simulation

SETTINGS = (
    ("tso-sr", "sr", 0.0, 0.0),
    ("tso-esr-high", "esr", 100_000.0, 10_000.0),
    ("mvto", "mvto", 0.0, 0.0),
)


def _run(protocol: str, til: float, tel: float, mpl: int):
    return run_simulation(
        SimulationConfig(
            mpl=mpl,
            til=til,
            tel=tel,
            protocol=protocol,
            duration_ms=BENCH_PLAN.duration_ms,
            warmup_ms=BENCH_PLAN.warmup_ms,
            seed=1,
        )
    )


def test_mvto_vs_esr(benchmark):
    mpl = 8
    results = {
        label: _run(protocol, til, tel, mpl)
        for label, protocol, til, tel in SETTINGS
    }
    benchmark.pedantic(_run, args=("mvto", 0.0, 0.0, mpl), rounds=2)
    print()
    print(f"MPL = {mpl}")
    print(
        format_table(
            ["engine", "throughput", "aborts", "inconsistent ops"],
            [
                (
                    label,
                    f"{r.throughput:.2f}",
                    r.aborts,
                    r.inconsistent_operations,
                )
                for label, r in results.items()
            ],
        )
    )
    # MVTO rides with high-epsilon ESR and beats SR decisively.
    ratio = results["mvto"].throughput / results["tso-esr-high"].throughput
    assert 0.8 <= ratio <= 1.2
    assert results["mvto"].throughput > results["tso-sr"].throughput * 1.5
    # MVTO is serializable: it admits no inconsistent operation, ever.
    assert results["mvto"].inconsistent_operations == 0
    # MVTO queries never abort; its few aborts are update-side rejections.
    assert results["mvto"].aborts < results["tso-sr"].aborts
