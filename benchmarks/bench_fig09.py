"""Figure 9 — Number of Aborts (retries) vs MPL.

Expected shape: aborts are almost zero at high bounds, shoot up as the
bounds shrink, and are highest for zero-epsilon (the SR case).  The
timed kernel is the zero-epsilon MPL-10 run — the abort-heaviest point.
"""

from __future__ import annotations

from conftest import BENCH_PLAN, report_figure

from repro.experiments.figures import fig9
from repro.sim.system import SimulationConfig, run_simulation


def test_fig9_aborts_vs_mpl(benchmark, shared_mpl_study):
    config = SimulationConfig(
        mpl=10,
        til=0.0,
        tel=0.0,
        duration_ms=BENCH_PLAN.duration_ms,
        warmup_ms=BENCH_PLAN.warmup_ms,
        seed=1,
    )
    benchmark.pedantic(run_simulation, args=(config,), rounds=3, iterations=1)
    figure = fig9(BENCH_PLAN, study=shared_mpl_study)
    report_figure(figure)
