"""Extension: ESR over asynchronous replication (the paper's future work).

The paper closes with "it will be worthwhile to evaluate ESR in the case
of a distributed system with data replication".  This benchmark runs that
evaluation on the simulated primary/replica system:

* **export sweep** — update throughput vs the replica divergence bound:
  epsilon 0 is eager replication (slow, exact), epsilon infinity is fully
  asynchronous (fast, stale);
* **import sweep** — query throughput vs the per-read staleness cap:
  tight caps force remote fetches (fresh but slow), loose caps serve
  everything locally.
"""

from __future__ import annotations

import math

from repro.experiments.report import format_table
from repro.replication.system import ReplicationConfig, run_replication

W = 2_000.0
SWEEP_W = (0.0, 1.0, 2.0, 4.0, math.inf)


def _eps(value_w: float) -> float:
    return math.inf if math.isinf(value_w) else value_w * W


def test_replication_export_tradeoff(benchmark):
    results = {
        eps_w: run_replication(
            ReplicationConfig(
                replica_epsilon=_eps(eps_w),
                duration_ms=15_000.0,
                propagation_delay=200.0,
                seed=2,
            )
        )
        for eps_w in SWEEP_W
    }
    benchmark.pedantic(
        run_replication,
        args=(
            ReplicationConfig(
                replica_epsilon=2 * W,
                duration_ms=15_000.0,
                propagation_delay=200.0,
                seed=2,
            ),
        ),
        rounds=3,
    )
    print()
    print(
        format_table(
            ["epsilon (w)", "updates/s", "forced syncs", "staleness/query"],
            [
                (
                    f"{eps_w:g}",
                    f"{r.update_throughput:.1f}",
                    r.forced_syncs,
                    f"{r.mean_staleness_per_query:.0f}",
                )
                for eps_w, r in results.items()
            ],
        )
    )
    tight, loose = results[0.0], results[math.inf]
    assert loose.update_throughput > tight.update_throughput * 2
    assert tight.mean_staleness_per_query == 0.0
    assert loose.forced_syncs == 0


def test_replication_import_tradeoff(benchmark):
    results = {
        oil_w: run_replication(
            ReplicationConfig(
                oil=_eps(oil_w),
                til=math.inf,
                duration_ms=15_000.0,
                propagation_delay=200.0,
                seed=2,
            )
        )
        for oil_w in SWEEP_W
    }
    benchmark.pedantic(
        run_replication,
        args=(
            ReplicationConfig(
                oil=2 * W,
                til=math.inf,
                duration_ms=15_000.0,
                propagation_delay=200.0,
                seed=2,
            ),
        ),
        rounds=3,
    )
    print()
    print(
        format_table(
            ["oil (w)", "queries/s", "local reads", "staleness/query"],
            [
                (
                    f"{oil_w:g}",
                    f"{r.query_throughput:.1f}",
                    f"{r.local_read_fraction:.0%}",
                    f"{r.mean_staleness_per_query:.0f}",
                )
                for oil_w, r in results.items()
            ],
        )
    )
    tight, loose = results[0.0], results[math.inf]
    assert loose.query_throughput > tight.query_throughput * 1.5
    assert tight.mean_staleness_per_query == 0.0
    assert loose.local_read_fraction == 1.0
