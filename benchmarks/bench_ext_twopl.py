"""Extension: timestamp-ordered ESR vs lock-based divergence control.

The paper implements ESR over timestamp ordering; Wu et al. (its
reference [21]) implement the same correctness notion over strict 2PL.
Running both engines on the identical workload separates what ESR buys
from what the underlying concurrency control costs:

* with bounds, the two ESR engines deliver comparable throughput — the
  relaxation, not the CC mechanism, is what defeats the contention;
* without bounds, blocking (2PL) beats abort-and-restart (TSO) under
  high contention — the classic Agrawal/Carey/Livny result the paper
  cites as reference [1] — but pays with deadlock aborts, a failure
  mode the age-ordered TSO waits cannot produce.
"""

from __future__ import annotations

from conftest import BENCH_PLAN

from repro.experiments.report import format_table
from repro.sim.system import SimulationConfig, run_simulation

SETTINGS = (
    ("tso-sr", "sr", 0.0, 0.0),
    ("tso-esr-high", "esr", 100_000.0, 10_000.0),
    ("2pl-sr", "2pl-sr", 0.0, 0.0),
    ("2pl-esr-high", "2pl", 100_000.0, 10_000.0),
)


def _run(protocol: str, til: float, tel: float, mpl: int):
    return run_simulation(
        SimulationConfig(
            mpl=mpl,
            til=til,
            tel=tel,
            protocol=protocol,
            duration_ms=BENCH_PLAN.duration_ms,
            warmup_ms=BENCH_PLAN.warmup_ms,
            seed=1,
        )
    )


def test_tso_vs_2pl_divergence_control(benchmark):
    mpl = 8
    results = {
        label: _run(protocol, til, tel, mpl)
        for label, protocol, til, tel in SETTINGS
    }
    benchmark.pedantic(
        _run, args=("2pl", 100_000.0, 10_000.0, mpl), rounds=2
    )
    print()
    print(f"MPL = {mpl}")
    print(
        format_table(
            ["engine", "throughput", "aborts", "deadlocks", "inconsistent ops"],
            [
                (
                    label,
                    f"{r.throughput:.2f}",
                    r.aborts,
                    r.metrics.aborts_by_reason.get("deadlock", 0),
                    r.inconsistent_operations,
                )
                for label, r in results.items()
            ],
        )
    )
    # ESR defeats the contention on either substrate.
    assert (
        results["tso-esr-high"].throughput
        > results["tso-sr"].throughput * 1.5
    )
    assert (
        results["2pl-esr-high"].throughput
        > results["2pl-sr"].throughput * 1.3
    )
    # The two ESR engines land in the same ballpark.
    ratio = (
        results["2pl-esr-high"].throughput
        / results["tso-esr-high"].throughput
    )
    assert 0.75 <= ratio <= 1.25
    # Blocking beats abort-restart for the SR baselines (reference [1]).
    assert (
        results["2pl-sr"].throughput >= results["tso-sr"].throughput * 0.95
    )
    # Deadlocks exist only under 2PL; TSO's age-ordered waits are acyclic.
    assert results["tso-sr"].metrics.aborts_by_reason.get("deadlock", 0) == 0
    assert results["tso-esr-high"].metrics.aborts_by_reason.get("deadlock", 0) == 0
